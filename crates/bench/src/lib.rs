//! Shared infrastructure for the benchmark harness binaries that
//! regenerate every table and figure of the paper (see DESIGN.md for the
//! experiment index).
//!
//! Binaries (run with `cargo run --release -p mempar-bench --bin <name>`):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 (base simulated configuration) |
//! | `table2` | Table 2 (workload catalog) |
//! | `latbench` | §5.1 (Latbench stall/latency/utilization) |
//! | `fig3` | Figure 3 (execution-time breakdowns, `--mode up/mp/up-1ghz/mp-1ghz`) |
//! | `table3` | Table 3 (Exemplar-like machine reductions) |
//! | `fig4` | Figure 4 (L2 MSHR occupancy curves, LU & Ocean) |
//! | `ablation` | Design-choice ablations (window/MSHR/degree sweeps) |
//!
//! All binaries accept `--scale <f>` (default 0.1) to size the inputs as
//! a fraction of Table 2's, and `--apps a,b,c` to restrict the set.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};

use mempar::{
    chrome_trace_json, run_pair_locality, ChromeRun, Engine, Locality, LocalityArtifacts,
    MachineConfig, ObservedRun, Protocol, RunPair, SimOptions, Stepper,
};
use mempar_obs::escape_json;
use mempar_stats::MshrOccupancy;
use mempar_workloads::App;

/// Harness log verbosity. Progress lines go to stderr at `Info` and
/// above; warnings (e.g. output mismatches) are always printed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Only results on stdout and hard warnings on stderr.
    Quiet = 0,
    /// Progress lines (the default).
    Info = 1,
    /// Everything, including per-run diagnostics.
    Debug = 2,
}

static LOG_LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Sets the process-wide harness log level.
pub fn set_log_level(level: LogLevel) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether messages at `level` should be emitted.
pub fn log_enabled(level: LogLevel) -> bool {
    LOG_LEVEL.load(Ordering::Relaxed) >= level as u8
}

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Input-size fraction of the paper's Table 2 sizes.
    pub scale: f64,
    /// Applications to run.
    pub apps: Vec<App>,
    /// Free-form mode string (binary-specific).
    pub mode: String,
    /// Override processor count (0 = use each workload's Table 2 count).
    pub procs: usize,
    /// Worker threads for the experiment matrix (0 = all cores).
    pub threads: usize,
    /// Write a Chrome trace_event JSON of the observed runs here.
    pub trace_out: Option<String>,
    /// Write a metrics-registry JSON snapshot here.
    pub metrics_out: Option<String>,
    /// Print the per-leading-reference miss-clustering profile.
    pub profile_refs: bool,
    /// Functional engine feeding the simulator (`--engine`, default
    /// bytecode).
    pub engine: Engine,
    /// Clock-advance strategy (`--stepper`, default event). Every
    /// stepper yields bit-identical results; they differ only in speed.
    pub stepper: Stepper,
    /// Worker threads the event stepper shards cores across
    /// (`--shards`, default 1 = single-threaded). Deterministic: results
    /// are bit-identical at every shard count.
    pub shards: usize,
    /// Coherence protocol driving the memory system (`--protocol`,
    /// default directory). Functional results are identical across
    /// protocols; only cycle counts move.
    pub protocol: Protocol,
    /// Locality model feeding the analysis (`--locality`, default
    /// analytic). Measured mode runs the sampled reuse-distance
    /// profiler and calibrates `L_m`/`P_m` against the paper's static
    /// model.
    pub locality: Locality,
    /// Write the measured-locality JSON (reuse report + delta table)
    /// here; requires `--locality measured`.
    pub reuse_out: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        let opts = SimOptions::default();
        HarnessArgs {
            scale: 0.1,
            apps: App::applications().to_vec(),
            mode: String::new(),
            procs: 0,
            threads: 0,
            trace_out: None,
            metrics_out: None,
            profile_refs: false,
            engine: Engine::default(),
            stepper: opts.stepper,
            shards: opts.shards,
            protocol: opts.protocol,
            locality: Locality::default(),
            reuse_out: None,
        }
    }
}

impl HarnessArgs {
    /// Whether any observability output was requested (tracing, metrics
    /// or the reference profile) — binaries use this to decide whether
    /// to rerun their experiments with the tracer attached.
    pub fn wants_observation(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.profile_refs
    }

    /// Driver options implied by the flags (stepper, shards, engine,
    /// protocol).
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            stepper: self.stepper,
            shards: self.shards,
            engine: self.engine,
            protocol: self.protocol,
        }
    }
}

/// The full usage string printed by `--help` and on any argument error.
pub fn usage() -> String {
    let bin = std::env::args()
        .next()
        .map(|p| {
            std::path::Path::new(&p)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or(p.clone())
        })
        .unwrap_or_else(|| "harness".into());
    let apps: Vec<&str> = App::all().iter().map(|a| a.name()).collect();
    format!(
        "usage: {bin} [--scale <f>] [--apps <a,b,c>] [--mode <m>] [--procs <n>] [--threads <n>]\n\
         \x20       [--engine <e>] [--stepper <s>] [--shards <n>] [--protocol <p>]\n\
         \x20       [--locality <l>] [--reuse-out <path>]\n\
         \x20       [--trace-out <path>] [--metrics-out <path>] [--profile-refs] [--quiet]\n\
         \n\
         \x20 --scale <f>        input-size fraction of the paper's Table 2 sizes (default 0.1)\n\
         \x20 --apps <list>      comma-separated subset of: {}\n\
         \x20 --mode <m>         binary-specific mode string (fig3: up|mp|up-1ghz|mp-1ghz)\n\
         \x20 --procs <n>        override processor count (0 = each workload's Table 2 count)\n\
         \x20 --threads <n>      worker threads for the experiment matrix (0 = all cores)\n\
         \x20 --engine <e>       functional engine: bytecode (default, fast) | interp (reference)\n\
         \x20 --stepper <s>      clock driver: event (default, fast) | skip | strict (reference);\n\
         \x20                    results are bit-identical across steppers\n\
         \x20 --shards <n>       worker threads the event stepper shards cores across (default 1;\n\
         \x20                    deterministic — results are bit-identical at every count)\n\
         \x20 --protocol <p>     coherence protocol: directory (default) | mesi | moesi | dragon;\n\
         \x20                    functional results are identical, only cycle counts move\n\
         \x20 --locality <l>     locality model: analytic (default, the paper's static model) |\n\
         \x20                    measured (sampled reuse-distance profiling calibrates L_m/P_m\n\
         \x20                    and prints the predicted-vs-measured delta table)\n\
         \x20 --reuse-out <p>    write the measured-locality JSON (reuse report + delta table);\n\
         \x20                    requires --locality measured\n\
         \x20 --trace-out <p>    write a Chrome trace_event JSON (open in Perfetto)\n\
         \x20 --metrics-out <p>  write a metrics-registry JSON snapshot\n\
         \x20 --profile-refs     print the per-leading-reference miss-clustering profile\n\
         \x20 --quiet, -q        suppress progress lines on stderr\n\
         \x20 --help, -h         print this message\n\
         \n\
         environment:\n\
         \x20 MEMPAR_LOG         quiet | info | debug (flag --quiet wins over the env)",
        apps.join(",")
    )
}

/// Prints `msg` and the usage string to stderr, then exits with status 2.
fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}\n\n{}", usage());
    std::process::exit(2);
}

/// Parses the `MEMPAR_LOG` environment variable (`quiet` / `info` /
/// `debug`, case-insensitive). An unset or empty variable keeps the
/// default; an unrecognized value is an argument error (exit 2).
fn log_level_from_env() -> Option<LogLevel> {
    let val = std::env::var("MEMPAR_LOG").ok()?;
    if val.is_empty() {
        return None;
    }
    match val.to_ascii_lowercase().as_str() {
        "quiet" => Some(LogLevel::Quiet),
        "info" => Some(LogLevel::Info),
        "debug" => Some(LogLevel::Debug),
        other => usage_error(&format!(
            "MEMPAR_LOG expects quiet|info|debug, got {other:?}"
        )),
    }
}

/// Parses the shared harness flags (`--scale`, `--apps`, `--mode`,
/// `--procs`, `--threads`, the observability outputs `--trace-out` /
/// `--metrics-out` / `--profile-refs`, and `--quiet`) from the process
/// arguments, honoring `MEMPAR_LOG` for the log level. Unknown flags and
/// malformed values print the full usage string and exit with status 2.
pub fn parse_args() -> HarnessArgs {
    if let Some(level) = log_level_from_env() {
        set_log_level(level);
    }
    let mut out = HarnessArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = || {
            args.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {flag}")))
        };
        match flag.as_str() {
            "--scale" => {
                out.scale = take()
                    .parse()
                    .unwrap_or_else(|_| usage_error("--scale expects a float"))
            }
            "--mode" => out.mode = take(),
            "--procs" => {
                out.procs = take()
                    .parse()
                    .unwrap_or_else(|_| usage_error("--procs expects an integer"))
            }
            "--threads" => {
                out.threads = take()
                    .parse()
                    .unwrap_or_else(|_| usage_error("--threads expects an integer"))
            }
            "--apps" => {
                let list = take();
                out.apps = list
                    .split(',')
                    .map(|name| {
                        App::all()
                            .into_iter()
                            .find(|a| a.name().eq_ignore_ascii_case(name))
                            .unwrap_or_else(|| usage_error(&format!("unknown app {name}")))
                    })
                    .collect();
            }
            "--engine" => out.engine = take().parse().unwrap_or_else(|e: String| usage_error(&e)),
            "--stepper" => out.stepper = take().parse().unwrap_or_else(|e: String| usage_error(&e)),
            "--protocol" => {
                out.protocol = take().parse().unwrap_or_else(|e: String| usage_error(&e))
            }
            "--shards" => {
                out.shards = take()
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage_error("--shards expects a positive integer"))
            }
            "--locality" => {
                out.locality = take().parse().unwrap_or_else(|e: String| usage_error(&e))
            }
            "--reuse-out" => out.reuse_out = Some(take()),
            "--trace-out" => out.trace_out = Some(take()),
            "--metrics-out" => out.metrics_out = Some(take()),
            "--profile-refs" => out.profile_refs = true,
            "--quiet" | "-q" => set_log_level(LogLevel::Quiet),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    if !out.scale.is_finite() || out.scale <= 0.0 {
        usage_error("--scale expects a positive float");
    }
    if out.shards > 1 && out.stepper != Stepper::Event {
        usage_error(&format!(
            "--shards {} requires --stepper event (the {} stepper is single-threaded)",
            out.shards, out.stepper
        ));
    }
    if out.reuse_out.is_some() && out.locality != Locality::Measured {
        usage_error("--reuse-out requires --locality measured");
    }
    out
}

/// Fans the `jobs` across a thread pool of `threads` workers (0 = all
/// cores) and returns the results **in input order**, regardless of how
/// the scheduler interleaved them — output is deterministic for a given
/// job list even though execution is not.
///
/// Each simulation run is itself single-threaded and deterministic, so
/// the thread count never changes any result, only wall-clock time.
pub fn run_matrix<T, R, F>(threads: usize, jobs: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool construction cannot fail");
    pool.run_indexed(jobs.len(), |i| run(&jobs[i]))
}

/// Runs one application base-vs-clustered on the machine `cfg` at
/// `scale` under the given driver options, printing a progress line.
pub fn run_app(app: App, cfg: &MachineConfig, scale: f64, opts: SimOptions) -> RunPair {
    run_app_locality(app, cfg, scale, opts, Locality::Analytic).0
}

/// [`run_app`] under an explicit locality mode; measured mode hands back
/// the calibration artifacts alongside the pair.
pub fn run_app_locality(
    app: App,
    cfg: &MachineConfig,
    scale: f64,
    opts: SimOptions,
    locality: Locality,
) -> (RunPair, Option<LocalityArtifacts>) {
    let w = app.build(scale);
    if log_enabled(LogLevel::Info) {
        eprintln!(
            "[{}] {} on {} ({} procs)...",
            app.name(),
            w.name,
            cfg.name,
            cfg.nprocs
        );
    }
    let (pair, artifacts) = run_pair_locality(&w, cfg, opts, locality);
    if !pair.outputs_match {
        eprintln!(
            "WARNING: {} outputs differ between base and clustered!",
            app.name()
        );
    }
    (pair, artifacts)
}

/// Serializes the metric snapshots of several observed runs as one JSON
/// document: `{"runs": [{"name", "trace_events", "trace_dropped",
/// "snapshot": {"metrics": ...}}, ...]}`. Hand-rolled JSON: the offline
/// build has no serde.
pub fn metrics_json(runs: &[&ObservedRun]) -> String {
    let mut s = String::from("{\n\"runs\": [\n");
    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"name\": \"{}\", \"trace_events\": {}, \"trace_dropped\": {}, \"snapshot\": {}}}",
                escape_json(&r.name),
                r.obs.trace.len(),
                r.obs.dropped,
                r.obs.metrics.to_json().trim_end()
            )
        })
        .collect();
    s.push_str(&entries.join(",\n"));
    s.push_str("\n]\n}\n");
    s
}

/// Writes the observability outputs a binary's `args` requested for the
/// observed `runs`: the Chrome trace (`--trace-out`, one viewer process
/// per run), the metrics snapshot (`--metrics-out`) and the
/// per-leading-reference clustering profile tables (`--profile-refs`,
/// printed to stdout).
pub fn write_observation_outputs(args: &HarnessArgs, runs: &[&ObservedRun]) {
    if let Some(path) = &args.trace_out {
        let chrome_runs: Vec<ChromeRun> = runs
            .iter()
            .enumerate()
            .map(|(i, r)| ChromeRun {
                name: &r.name,
                pid: i as u32,
                events: &r.obs.trace,
                end_cycle: r.obs.end_cycle,
                reuse: &r.obs.reuse_samples,
            })
            .collect();
        let clock_mhz = runs.first().map_or(0, |r| r.obs.clock_mhz);
        let json = chrome_trace_json(&chrome_runs, clock_mhz);
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        if log_enabled(LogLevel::Info) {
            eprintln!("wrote trace to {path} (open at https://ui.perfetto.dev)");
        }
        for r in runs {
            if r.obs.dropped > 0 {
                eprintln!(
                    "WARNING: {}: trace ring dropped {} events (oldest first)",
                    r.name, r.obs.dropped
                );
            }
        }
    }
    if let Some(path) = &args.metrics_out {
        let json = metrics_json(runs);
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        if log_enabled(LogLevel::Info) {
            eprintln!("wrote metrics to {path}");
        }
    }
    if args.profile_refs {
        for r in runs {
            println!("\n{}", r.profile.format_table(&r.name));
        }
    }
}

/// Serializes per-workload measured-locality artifacts as the
/// `--reuse-out` JSON document (see schemas/obs-reuse.schema.json):
/// `{"workloads": [{"name", "report": {...}, "delta": {...}}, ...]}`.
/// Hand-rolled JSON: the offline build has no serde.
pub fn reuse_json(entries: &[(&str, &LocalityArtifacts)]) -> String {
    let mut s = String::from("{\n\"workloads\": [\n");
    let items: Vec<String> = entries
        .iter()
        .map(|(name, a)| {
            format!(
                "  {{\"name\": \"{}\", \"report\": {}, \"delta\": {}}}",
                escape_json(name),
                a.report.to_json(),
                a.delta.to_json()
            )
        })
        .collect();
    s.push_str(&items.join(",\n"));
    s.push_str("\n]\n}\n");
    s
}

/// Prints the measured-locality tables (reuse report + predicted-vs-
/// measured deltas) for each workload and writes the `--reuse-out` JSON
/// when requested. No-op on an empty entry list.
pub fn write_locality_outputs(args: &HarnessArgs, entries: &[(&str, &LocalityArtifacts)]) {
    for (name, a) in entries {
        println!(
            "\n{}",
            a.report
                .format_table(&format!("{name}: measured reuse (sampled)"))
        );
        println!(
            "{}",
            a.delta
                .format_table(&format!("{name}: predicted vs measured (L_m/P_m/f)"))
        );
    }
    if let Some(path) = &args.reuse_out {
        if entries.is_empty() {
            return;
        }
        let json = reuse_json(entries);
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        if log_enabled(LogLevel::Info) {
            eprintln!("wrote measured-locality report to {path}");
        }
    }
}

/// Machine for the simulated uni/multiprocessor experiments (Table 1).
pub fn simulated_config(app: App, scale: f64, mp: bool, ghz: bool) -> MachineConfig {
    let w = app.build(scale);
    // The Woo et al. methodology scales caches with the working set; at
    // reduced input scales, scale the L2 similarly (min 32 KB).
    let l2 = scaled_l2(w.l2_bytes, scale);
    let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
    if ghz {
        MachineConfig::fast_1ghz(nprocs, l2)
    } else {
        MachineConfig::base_simulated(nprocs, l2)
    }
}

/// Scales an L2 size with the input scale, keeping a power of two and a
/// 32 KB floor.
pub fn scaled_l2(base_bytes: usize, scale: f64) -> usize {
    let target = (base_bytes as f64 * scale) as usize;
    let mut size = 32 * 1024;
    while size * 2 <= target {
        size *= 2;
    }
    size
}

/// One simulator-throughput measurement for `BENCH_sim.json`: how many
/// simulated cycles an experiment covered and how long that took on the
/// host.
#[derive(Debug, Clone)]
pub struct SimBenchRecord {
    /// Experiment name (e.g. `latbench-up`).
    pub experiment: String,
    /// Driver mode: `strict-cycle` / `cycle-skip` / `event` /
    /// `event-sh2` / `event-sh4` (bytecode engine, named by stepper and
    /// shard count), `tree-walk` (interpreter engine, event stepper), or
    /// `event-mesi` / `event-moesi` / `event-dragon` (event stepper
    /// under an alternative coherence protocol — these have their own
    /// cycle counts, so they stay out of the cross-mode cycle-equality
    /// assertion).
    pub mode: String,
    /// Simulated cycles covered (summed over the experiment's runs).
    pub cycles: u64,
    /// Simulated processors in the run. Occupancy histograms aggregate
    /// across all of them, so their `cycles` field is `cores ×
    /// (wall cycles + 1)` — the JSON carries the per-core normalization.
    pub cores: usize,
    /// Host wall-clock seconds spent simulating.
    pub wall_seconds: f64,
    /// Merged L2 MSHR occupancy histogram of the run, when recorded.
    pub occupancy: Option<MshrOccupancy>,
}

impl SimBenchRecord {
    /// Simulated cycles per host second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_seconds.max(1e-12)
    }
}

/// One isolated front-end measurement for `BENCH_sim.json`: draining the
/// full dynamic-op stream with no timing model attached. A simulated
/// run spends most of its host time in the timing model, so the
/// end-to-end `engine_speedup` sits near 1 by Amdahl's law; the drain is
/// where the engine swap itself is visible (DESIGN.md §9b).
#[derive(Debug, Clone)]
pub struct FrontendBenchRecord {
    /// Experiment name (matches the simulated records).
    pub experiment: String,
    /// Dynamic ops in one full drain of the stream.
    pub ops: u64,
    /// Host seconds for one tree-walking-interpreter drain.
    pub interp_seconds: f64,
    /// Host seconds for one bytecode-VM drain.
    pub bytecode_seconds: f64,
}

impl FrontendBenchRecord {
    /// Interpreter-vs-VM speedup of the isolated front-end.
    pub fn speedup(&self) -> f64 {
        self.interp_seconds / self.bytecode_seconds.max(1e-12)
    }
}

/// One measured-locality overhead measurement for `BENCH_sim.json`: what
/// the sampled reuse-distance profiler costs, both as a functional
/// pre-pass (`measure_locality` against a plain interpreter drain of the
/// same op stream) and as the in-sim fetch-stage tap (an observed event
/// run with the tap on against an identical run with it off). The tap
/// legs must report the same simulated cycle count as the untapped run —
/// the harness asserts zero drift before recording.
#[derive(Debug, Clone)]
pub struct LocalityBenchRecord {
    /// Experiment name (matches the simulated records).
    pub experiment: String,
    /// Dynamic memory accesses seen by the pre-pass profiler.
    pub accesses: u64,
    /// SHARDS sampling rate the pre-pass settled on.
    pub sampling_rate: f64,
    /// Accesses the pre-pass actually monitored (Olken updates).
    pub sampled: u64,
    /// Host seconds for one plain interpreter drain (no profiler).
    pub drain_seconds: f64,
    /// Host seconds for one `measure_locality` pre-pass (drain + profiler).
    pub prepass_seconds: f64,
    /// Host seconds for one observed event run, fetch-stage tap off.
    pub sim_seconds: f64,
    /// Host seconds for one observed event run, fetch-stage tap on.
    pub sim_tap_seconds: f64,
}

impl LocalityBenchRecord {
    /// Pre-pass cost over a plain functional drain (1.0 = free).
    pub fn prepass_overhead(&self) -> f64 {
        self.prepass_seconds / self.drain_seconds.max(1e-12)
    }

    /// In-sim tap cost over an identical untapped observed run.
    pub fn tap_overhead(&self) -> f64 {
        self.sim_tap_seconds / self.sim_seconds.max(1e-12)
    }
}

/// One autotuner measurement for `BENCH_sim.json`: simulated cycles of
/// the untransformed program, of the paper-default clustering driver's
/// output, and of the composition tuner's winner (DESIGN.md §13), plus
/// the search totals. The headline column is `tuned_vs_default` —
/// how much the empirical search buys over the paper's analytic recipe.
#[derive(Debug, Clone)]
pub struct TuneBenchRecord {
    /// Experiment name (e.g. `latbench-up`).
    pub experiment: String,
    /// Simulated cycles of the untransformed program.
    pub base_cycles: u64,
    /// Simulated cycles of the default clustering driver's output.
    pub default_cycles: u64,
    /// Simulated cycles of the tuner's winner (≤ both by construction).
    pub tuned_cycles: u64,
    /// Which source won: `search`, `default-driver`, or `base`.
    pub winner: String,
    /// Compositions surviving constraint propagation.
    pub enumerated: u64,
    /// Candidates the simulator actually scored.
    pub scored: u64,
    /// Host wall-clock seconds the whole search took.
    pub wall_seconds: f64,
}

impl TuneBenchRecord {
    /// A record from a finished tune report.
    pub fn from_report(report: &mempar_tune::TuneReport, wall_seconds: f64) -> Self {
        TuneBenchRecord {
            experiment: report.name.clone(),
            base_cycles: report.base_cycles,
            default_cycles: report.default_cycles,
            tuned_cycles: report.tuned_cycles,
            winner: report.winner.clone(),
            enumerated: report.stats.enumerated,
            scored: report.stats.scored,
            wall_seconds,
        }
    }

    /// `default_cycles / tuned_cycles` (>1 = the search beat the paper
    /// recipe; never <1).
    pub fn tuned_vs_default(&self) -> f64 {
        self.default_cycles as f64 / self.tuned_cycles.max(1) as f64
    }

    /// `base_cycles / tuned_cycles` (>1 = faster than untransformed).
    pub fn tuned_vs_base(&self) -> f64 {
        self.base_cycles as f64 / self.tuned_cycles.max(1) as f64
    }
}

/// The occupancy histogram JSON with the explicit `cores` count and the
/// per-core normalization spliced in: the raw `cycles` field aggregates
/// samples across every processor (`cores × (wall cycles + 1)`), which
/// reads confusingly against the experiment's cycle count, so
/// `cycles_per_core` carries the per-processor sample count alongside.
fn occupancy_json(o: &MshrOccupancy, cores: usize) -> String {
    let base = o.to_json();
    let body = base.strip_prefix('{').unwrap_or(&base);
    format!(
        "{{\"cores\": {}, \"cycles_per_core\": {}, {}",
        cores,
        o.cycles() / cores.max(1) as u64,
        body
    )
}

/// Serializes the records (plus per-experiment stepper-vs-strict,
/// shard-scaling and bytecode-vs-tree-walk speedups, the isolated
/// front-end drain measurements, the measured-locality profiler
/// overhead legs, and the composition-tuner `tuned_vs_default` legs) as
/// the `BENCH_sim.json` document. Hand-rolled JSON: the offline build
/// has no serde.
pub fn bench_sim_json(
    scale: f64,
    records: &[SimBenchRecord],
    frontend: &[FrontendBenchRecord],
    locality: &[LocalityBenchRecord],
    tune: &[TuneBenchRecord],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str("  \"experiments\": [\n");
    for (i, r) in records.iter().enumerate() {
        let occupancy = match &r.occupancy {
            Some(o) => format!(", \"mshr_occupancy\": {}", occupancy_json(o, r.cores)),
            None => String::new(),
        };
        s.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"mode\": \"{}\", \"cycles\": {}, \"cores\": {}, \"wall_seconds\": {:.6}, \"cycles_per_sec\": {:.1}{}}}{}\n",
            r.experiment,
            r.mode,
            r.cycles,
            r.cores,
            r.wall_seconds,
            r.cycles_per_sec(),
            occupancy,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"speedups\": [\n");
    let find = |experiment: &str, mode: &str| {
        records
            .iter()
            .find(|s| s.experiment == experiment && s.mode == mode)
    };
    let mut lines = Vec::new();
    for r in records.iter().filter(|r| r.mode == "event") {
        let mut fields = vec![format!("\"experiment\": \"{}\"", r.experiment)];
        let ratio_vs = |base: &SimBenchRecord, leg: &SimBenchRecord| {
            leg.cycles_per_sec() / base.cycles_per_sec().max(1e-12)
        };
        if let Some(strict) = find(&r.experiment, "strict-cycle") {
            fields.push(format!("\"event_vs_strict\": {:.2}", ratio_vs(strict, r)));
            if let Some(skip) = find(&r.experiment, "cycle-skip") {
                fields.push(format!("\"skip_vs_strict\": {:.2}", ratio_vs(strict, skip)));
            }
        }
        for (col, mode) in [
            ("shard2_vs_event", "event-sh2"),
            ("shard4_vs_event", "event-sh4"),
        ] {
            if let Some(sharded) = find(&r.experiment, mode) {
                fields.push(format!("\"{col}\": {:.2}", ratio_vs(r, sharded)));
            }
        }
        if let Some(tree) = find(&r.experiment, "tree-walk") {
            fields.push(format!("\"engine_speedup\": {:.2}", ratio_vs(tree, r)));
        }
        // What each coherence machine costs relative to the directory
        // baseline, in simulated cycles (not host throughput).
        for (col, mode) in [
            ("mesi_cycles_vs_directory", "event-mesi"),
            ("moesi_cycles_vs_directory", "event-moesi"),
            ("dragon_cycles_vs_directory", "event-dragon"),
        ] {
            if let Some(leg) = find(&r.experiment, mode) {
                fields.push(format!(
                    "\"{col}\": {:.3}",
                    leg.cycles as f64 / r.cycles.max(1) as f64
                ));
            }
        }
        if let Some(f) = frontend.iter().find(|f| f.experiment == r.experiment) {
            fields.push(format!("\"frontend_speedup\": {:.2}", f.speedup()));
        }
        if let Some(l) = locality.iter().find(|l| l.experiment == r.experiment) {
            fields.push(format!(
                "\"reuse_prepass_overhead\": {:.2}",
                l.prepass_overhead()
            ));
            fields.push(format!("\"reuse_tap_overhead\": {:.2}", l.tap_overhead()));
        }
        if let Some(t) = tune.iter().find(|t| t.experiment == r.experiment) {
            fields.push(format!("\"tuned_vs_default\": {:.3}", t.tuned_vs_default()));
        }
        if fields.len() > 1 {
            lines.push(format!("    {{{}}}", fields.join(", ")));
        }
    }
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  ],\n  \"frontend\": [\n");
    let flines: Vec<String> = frontend
        .iter()
        .map(|f| {
            format!(
                "    {{\"experiment\": \"{}\", \"ops\": {}, \"interp_ns_per_op\": {:.2}, \"bytecode_ns_per_op\": {:.2}, \"frontend_speedup\": {:.2}}}",
                f.experiment,
                f.ops,
                f.interp_seconds * 1e9 / f.ops.max(1) as f64,
                f.bytecode_seconds * 1e9 / f.ops.max(1) as f64,
                f.speedup()
            )
        })
        .collect();
    s.push_str(&flines.join(",\n"));
    s.push_str("\n  ],\n  \"locality\": [\n");
    let llines: Vec<String> = locality
        .iter()
        .map(|l| {
            format!(
                "    {{\"experiment\": \"{}\", \"accesses\": {}, \"sampling_rate\": {:.6}, \"sampled\": {}, \"drain_ns_per_access\": {:.2}, \"prepass_ns_per_access\": {:.2}, \"prepass_overhead\": {:.2}, \"sim_tap_overhead\": {:.2}}}",
                l.experiment,
                l.accesses,
                l.sampling_rate,
                l.sampled,
                l.drain_seconds * 1e9 / l.accesses.max(1) as f64,
                l.prepass_seconds * 1e9 / l.accesses.max(1) as f64,
                l.prepass_overhead(),
                l.tap_overhead()
            )
        })
        .collect();
    s.push_str(&llines.join(",\n"));
    s.push_str("\n  ],\n  \"tune\": [\n");
    let tlines: Vec<String> = tune
        .iter()
        .map(|t| {
            format!(
                "    {{\"experiment\": \"{}\", \"base_cycles\": {}, \"default_cycles\": {}, \"tuned_cycles\": {}, \"winner\": \"{}\", \"tuned_vs_default\": {:.3}, \"tuned_vs_base\": {:.3}, \"enumerated\": {}, \"scored\": {}, \"wall_seconds\": {:.6}}}",
                t.experiment,
                t.base_cycles,
                t.default_cycles,
                t.tuned_cycles,
                t.winner,
                t.tuned_vs_default(),
                t.tuned_vs_base(),
                t.enumerated,
                t.scored,
                t.wall_seconds
            )
        })
        .collect();
    s.push_str(&tlines.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// Times `f`, returning its result and the elapsed wall seconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = std::time::Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// One row of a Figure 3-style summary for stdout.
pub fn summarize_pair(pair: &RunPair) -> String {
    let b = pair.base.mean_breakdown();
    let c = pair.clustered.mean_breakdown();
    format!(
        "{:<11} base {:>12} cy | clust {:>12} cy | reduction {:>5.1}% | data stall {:>5.1}% -> {:>5.1}% | outputs {}",
        pair.name,
        pair.base.cycles,
        pair.clustered.cycles,
        pair.percent_reduction(),
        100.0 * b.data / b.total().max(1e-9),
        100.0 * c.data / b.total().max(1e-9),
        if pair.outputs_match { "ok" } else { "MISMATCH" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_scaling() {
        assert_eq!(scaled_l2(64 * 1024, 1.0), 64 * 1024);
        assert_eq!(scaled_l2(1024 * 1024, 1.0), 1024 * 1024);
        assert_eq!(scaled_l2(64 * 1024, 0.1), 32 * 1024);
        assert_eq!(scaled_l2(1024 * 1024, 0.1), 64 * 1024);
    }

    #[test]
    fn default_args() {
        let a = HarnessArgs::default();
        assert_eq!(a.apps.len(), 7);
        assert!(a.scale > 0.0);
        assert!(!a.wants_observation());
    }

    #[test]
    fn log_levels_order() {
        assert!(LogLevel::Quiet < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn bench_json_embeds_occupancy() {
        // Two cores' worth of aggregated samples: the JSON must carry
        // the explicit core count and the per-core normalization.
        let mut occ = MshrOccupancy::new(2);
        occ.sample(1, 2);
        occ.sample(1, 1);
        let records = vec![
            SimBenchRecord {
                experiment: "fft-mp".into(),
                mode: "event".into(),
                cycles: 1000,
                cores: 2,
                wall_seconds: 0.5,
                occupancy: Some(occ),
            },
            SimBenchRecord {
                experiment: "fft-mp".into(),
                mode: "strict-cycle".into(),
                cycles: 1000,
                cores: 2,
                wall_seconds: 1.0,
                occupancy: None,
            },
            SimBenchRecord {
                experiment: "fft-mp".into(),
                mode: "event-sh2".into(),
                cycles: 1000,
                cores: 2,
                wall_seconds: 0.25,
                occupancy: None,
            },
        ];
        let frontend = vec![FrontendBenchRecord {
            experiment: "fft-mp".into(),
            ops: 10_000,
            interp_seconds: 0.3,
            bytecode_seconds: 0.2,
        }];
        let locality = vec![LocalityBenchRecord {
            experiment: "fft-mp".into(),
            accesses: 8_000,
            sampling_rate: 0.125,
            sampled: 1_000,
            drain_seconds: 0.10,
            prepass_seconds: 0.15,
            sim_seconds: 0.50,
            sim_tap_seconds: 0.55,
        }];
        let tune = vec![TuneBenchRecord {
            experiment: "fft-mp".into(),
            base_cycles: 1200,
            default_cycles: 1000,
            tuned_cycles: 800,
            winner: "search".into(),
            enumerated: 40,
            scored: 16,
            wall_seconds: 0.75,
        }];
        let json = bench_sim_json(0.1, &records, &frontend, &locality, &tune);
        assert!(json.contains("\"mshr_occupancy\""));
        assert!(json.contains("\"mean_read_occupancy\""));
        assert!(json.contains("\"cores\": 2"));
        assert!(json.contains("\"cycles_per_core\": 1"));
        assert!(json.contains("\"event_vs_strict\": 2.00"));
        assert!(json.contains("\"shard2_vs_event\": 2.00"));
        assert!(json.contains("\"frontend_speedup\": 1.50"));
        assert!(json.contains("\"interp_ns_per_op\""));
        assert!(json.contains("\"prepass_overhead\": 1.50"));
        assert!(json.contains("\"sim_tap_overhead\": 1.10"));
        assert!(json.contains("\"reuse_prepass_overhead\": 1.50"));
        assert!(json.contains("\"reuse_tap_overhead\": 1.10"));
        assert!(json.contains("\"sampling_rate\": 0.125000"));
        // The tune leg lands both as its own record and as the
        // headline column on the experiment's speedups row.
        assert!(json.contains("\"tuned_vs_default\": 1.250"));
        assert!(json.contains("\"tuned_vs_base\": 1.500"));
        assert!(json.contains("\"winner\": \"search\""));
        mempar_obs::validate_json(&json).expect("BENCH_sim.json must stay valid JSON");

        // No frontend/locality/tune records must still serialize as
        // valid JSON.
        let json = bench_sim_json(0.1, &records, &[], &[], &[]);
        mempar_obs::validate_json(&json).expect("frontend-less BENCH_sim.json must stay valid");
    }
}
