//! Shared infrastructure for the benchmark harness binaries that
//! regenerate every table and figure of the paper (see DESIGN.md for the
//! experiment index).
//!
//! Binaries (run with `cargo run --release -p mempar-bench --bin <name>`):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 (base simulated configuration) |
//! | `table2` | Table 2 (workload catalog) |
//! | `latbench` | §5.1 (Latbench stall/latency/utilization) |
//! | `fig3` | Figure 3 (execution-time breakdowns, `--mode up/mp/up-1ghz/mp-1ghz`) |
//! | `table3` | Table 3 (Exemplar-like machine reductions) |
//! | `fig4` | Figure 4 (L2 MSHR occupancy curves, LU & Ocean) |
//! | `ablation` | Design-choice ablations (window/MSHR/degree sweeps) |
//!
//! All binaries accept `--scale <f>` (default 0.1) to size the inputs as
//! a fraction of Table 2's, and `--apps a,b,c` to restrict the set.

#![warn(missing_docs)]

use mempar::{run_pair, MachineConfig, RunPair};
use mempar_workloads::App;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Input-size fraction of the paper's Table 2 sizes.
    pub scale: f64,
    /// Applications to run.
    pub apps: Vec<App>,
    /// Free-form mode string (binary-specific).
    pub mode: String,
    /// Override processor count (0 = use each workload's Table 2 count).
    pub procs: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 0.1,
            apps: App::applications().to_vec(),
            mode: String::new(),
            procs: 0,
        }
    }
}

/// Parses `--scale`, `--apps`, `--mode` and `--procs` from the process
/// arguments. Unknown flags abort with a usage message.
pub fn parse_args() -> HarnessArgs {
    let mut out = HarnessArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => {
                out.scale = take().parse().unwrap_or_else(|_| {
                    eprintln!("--scale expects a float");
                    std::process::exit(2);
                })
            }
            "--mode" => out.mode = take(),
            "--procs" => {
                out.procs = take().parse().unwrap_or_else(|_| {
                    eprintln!("--procs expects an integer");
                    std::process::exit(2);
                })
            }
            "--apps" => {
                let list = take();
                out.apps = list
                    .split(',')
                    .map(|name| {
                        App::all()
                            .into_iter()
                            .find(|a| a.name().eq_ignore_ascii_case(name))
                            .unwrap_or_else(|| {
                                eprintln!("unknown app {name}");
                                std::process::exit(2);
                            })
                    })
                    .collect();
            }
            "--help" | "-h" => {
                println!(
                    "flags: --scale <f>  --apps <a,b,c>  --mode <m>  --procs <n>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    out
}

/// Runs one application base-vs-clustered on the machine `cfg` at
/// `scale`, printing a progress line.
pub fn run_app(app: App, cfg: &MachineConfig, scale: f64) -> RunPair {
    let w = app.build(scale);
    eprintln!(
        "[{}] {} on {} ({} procs)...",
        app.name(),
        w.name,
        cfg.name,
        cfg.nprocs
    );
    let pair = run_pair(&w, cfg);
    if !pair.outputs_match {
        eprintln!("WARNING: {} outputs differ between base and clustered!", app.name());
    }
    pair
}

/// Machine for the simulated uni/multiprocessor experiments (Table 1).
pub fn simulated_config(app: App, scale: f64, mp: bool, ghz: bool) -> MachineConfig {
    let w = app.build(scale);
    // The Woo et al. methodology scales caches with the working set; at
    // reduced input scales, scale the L2 similarly (min 32 KB).
    let l2 = scaled_l2(w.l2_bytes, scale);
    let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
    if ghz {
        MachineConfig::fast_1ghz(nprocs, l2)
    } else {
        MachineConfig::base_simulated(nprocs, l2)
    }
}

/// Scales an L2 size with the input scale, keeping a power of two and a
/// 32 KB floor.
pub fn scaled_l2(base_bytes: usize, scale: f64) -> usize {
    let target = (base_bytes as f64 * scale) as usize;
    let mut size = 32 * 1024;
    while size * 2 <= target {
        size *= 2;
    }
    size
}

/// One row of a Figure 3-style summary for stdout.
pub fn summarize_pair(pair: &RunPair) -> String {
    let b = pair.base.mean_breakdown();
    let c = pair.clustered.mean_breakdown();
    format!(
        "{:<11} base {:>12} cy | clust {:>12} cy | reduction {:>5.1}% | data stall {:>5.1}% -> {:>5.1}% | outputs {}",
        pair.name,
        pair.base.cycles,
        pair.clustered.cycles,
        pair.percent_reduction(),
        100.0 * b.data / b.total().max(1e-9),
        100.0 * c.data / b.total().max(1e-9),
        if pair.outputs_match { "ok" } else { "MISMATCH" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_scaling() {
        assert_eq!(scaled_l2(64 * 1024, 1.0), 64 * 1024);
        assert_eq!(scaled_l2(1024 * 1024, 1.0), 1024 * 1024);
        assert_eq!(scaled_l2(64 * 1024, 0.1), 32 * 1024);
        assert_eq!(scaled_l2(1024 * 1024, 0.1), 64 * 1024);
    }

    #[test]
    fn default_args() {
        let a = HarnessArgs::default();
        assert_eq!(a.apps.len(), 7);
        assert!(a.scale > 0.0);
    }
}
