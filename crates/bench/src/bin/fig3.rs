//! Regenerates Figure 3: normalized execution-time breakdowns, base vs
//! clustered, for the scientific applications.
//!
//! Modes: `up` (uniprocessor, Figure 3(b)), `mp` (multiprocessor,
//! Figure 3(a)), `up-1ghz` / `mp-1ghz` (the Section 5.2 1 GHz variant).
//!
//! ```text
//! cargo run --release -p mempar-bench --bin fig3 -- --mode up --scale 0.1
//! ```

use mempar_bench::{
    parse_args, run_app_locality, run_matrix, simulated_config, summarize_pair,
    write_locality_outputs,
};
use mempar_stats::{format_breakdown_table, render_breakdown_bars};
use mempar_workloads::App;

fn main() {
    let args = parse_args();
    let mode = if args.mode.is_empty() {
        "up".to_string()
    } else {
        args.mode.clone()
    };
    let (mp, ghz) = match mode.as_str() {
        "up" => (false, false),
        "mp" => (true, false),
        "up-1ghz" => (false, true),
        "mp-1ghz" => (true, true),
        other => {
            eprintln!("unknown --mode {other} (up|mp|up-1ghz|mp-1ghz)");
            std::process::exit(2);
        }
    };
    let title = match (mp, ghz) {
        (true, false) => "Figure 3(a): multiprocessor normalized execution time",
        (false, false) => "Figure 3(b): uniprocessor normalized execution time",
        (true, true) => "Section 5.2: 1 GHz multiprocessor variant",
        (false, true) => "Section 5.2: 1 GHz uniprocessor variant",
    };

    let mut apps = args.apps.clone();
    if mp {
        apps.retain(|a| a.runs_multiprocessor());
    }
    // Fan the applications across worker threads; results are collected
    // in application order, so stdout is identical at any thread count.
    let results = run_matrix(args.threads, &apps, |&app| {
        let cfg = simulated_config(app, args.scale, mp, ghz);
        run_app_locality(app, &cfg, args.scale, args.sim_options(), args.locality)
    });
    let mut entries = Vec::new();
    let mut reductions = Vec::new();
    for (app, (pair, _)) in apps.iter().zip(&results) {
        println!("{}", summarize_pair(pair));
        println!("  transforms:\n{}", indent(&pair.report.summary()));
        reductions.push(pair.percent_reduction());
        entries.push((
            app.name().to_string(),
            pair.base.mean_breakdown(),
            pair.clustered.mean_breakdown(),
        ));
    }
    println!();
    println!(
        "{}",
        format_breakdown_table(&format!("{title} (scale {})", args.scale), &entries)
    );
    println!("{}", render_breakdown_bars(title, &entries, 50));
    if !reductions.is_empty() {
        let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
        let min = reductions.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = reductions.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "execution time reduction: {min:.0}%..{max:.0}%, average {avg:.0}%  \
             (paper: {} )",
            if mp {
                "5-39%, avg 20% (mp)"
            } else {
                "11-49%, avg 30% (up)"
            }
        );
    }
    let locality_entries: Vec<(&str, &mempar::LocalityArtifacts)> = apps
        .iter()
        .zip(results.iter())
        .filter_map(|(app, (_, a))| a.as_ref().map(|a| (app.name(), a)))
        .collect();
    write_locality_outputs(&args, &locality_entries);
    let _ = App::all();
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
