//! Prints Table 2 — the workload catalog with the paper's simulated
//! input sizes and processor counts, plus the sizes produced at the
//! requested `--scale`.
//!
//! With `--profile-refs` (or `--trace-out`/`--metrics-out`) the selected
//! `--apps` are additionally run base-vs-clustered on the base simulated
//! uniprocessor with the tracer attached, producing per-leading-reference
//! clustering profiles and the requested trace/metrics exports.

use mempar::{
    calibrate_locality, observe_pair_locality, Locality, ObservedRun, DEFAULT_TRACE_CAPACITY,
};
use mempar_bench::{
    log_enabled, parse_args, run_matrix, simulated_config, write_locality_outputs,
    write_observation_outputs, LogLevel,
};
use mempar_stats::{format_rows, Row};
use mempar_workloads::App;

fn main() {
    let args = parse_args();
    // Building each workload materializes its (scaled) input data, so
    // even this catalog listing benefits from the worker pool.
    let apps = App::all();
    if log_enabled(LogLevel::Info) {
        eprintln!(
            "[table2] building {} workloads at scale {}...",
            apps.len(),
            args.scale
        );
    }
    let rows: Vec<Row> = run_matrix(args.threads, &apps, |&app| {
        let w = app.build(args.scale);
        let arrays: usize = w.program.arrays.iter().map(|a| a.len()).sum();
        Row::new(
            app.name(),
            vec![
                app.input_desc().to_string(),
                format!("{}", w.mp_procs),
                format!("{} KB", arrays * 8 / 1024),
                format!("{} KB", w.l2_bytes / 1024),
            ],
        )
    });
    println!(
        "{}",
        format_rows(
            &format!(
                "Table 2: workloads (simulated sizes; data at scale {})",
                args.scale
            ),
            &["paper input", "procs", "data@scale", "L2"],
            &rows
        )
    );

    // Measured-locality calibration: run the sampled reuse-distance
    // pre-pass on every selected app and print (and optionally export)
    // the predicted-vs-measured delta tables.
    if args.locality == Locality::Measured {
        let artifacts: Vec<_> = run_matrix(args.threads, &args.apps, |&app| {
            if log_enabled(LogLevel::Info) {
                eprintln!("[{}] measured-locality calibration...", app.name());
            }
            let w = app.build(args.scale);
            let cfg = simulated_config(app, args.scale, false, false);
            calibrate_locality(&w, &cfg).1
        });
        let entries: Vec<(&str, &mempar::LocalityArtifacts)> = args
            .apps
            .iter()
            .zip(artifacts.iter())
            .map(|(app, a)| (app.name(), a))
            .collect();
        write_locality_outputs(&args, &entries);
    }

    // Observability pass: run the selected apps base-vs-clustered on the
    // base simulated uniprocessor with the tracer attached, then emit the
    // requested trace/metrics/profile outputs.
    if args.wants_observation() {
        let observed: Vec<_> = run_matrix(args.threads, &args.apps, |&app| {
            if log_enabled(LogLevel::Info) {
                eprintln!("[{}] observed base-vs-clustered run...", app.name());
            }
            let w = app.build(args.scale);
            let cfg = simulated_config(app, args.scale, false, false);
            observe_pair_locality(
                &w,
                &cfg,
                DEFAULT_TRACE_CAPACITY,
                args.sim_options(),
                args.locality,
            )
            .0
        });
        let runs: Vec<&ObservedRun> = observed
            .iter()
            .flat_map(|pair| [&pair.base, &pair.clustered])
            .collect();
        write_observation_outputs(&args, &runs);
    }
}
