//! Prints Table 2 — the workload catalog with the paper's simulated
//! input sizes and processor counts, plus the sizes produced at the
//! requested `--scale`.

use mempar_bench::{parse_args, run_matrix};
use mempar_stats::{format_rows, Row};
use mempar_workloads::App;

fn main() {
    let args = parse_args();
    // Building each workload materializes its (scaled) input data, so
    // even this catalog listing benefits from the worker pool.
    let apps = App::all();
    let rows: Vec<Row> = run_matrix(args.threads, &apps, |&app| {
        let w = app.build(args.scale);
        let arrays: usize = w.program.arrays.iter().map(|a| a.len()).sum();
        Row::new(
            app.name(),
            vec![
                app.input_desc().to_string(),
                format!("{}", w.mp_procs),
                format!("{} KB", arrays * 8 / 1024),
                format!("{} KB", w.l2_bytes / 1024),
            ],
        )
    });
    println!(
        "{}",
        format_rows(
            &format!(
                "Table 2: workloads (simulated sizes; data at scale {})",
                args.scale
            ),
            &["paper input", "procs", "data@scale", "L2"],
            &rows
        )
    );
}
