//! Regenerates Table 3: percent execution-time reduction from clustering
//! on the Exemplar-like machine (bus-based SMP, single-level 1 MB cache,
//! 32-byte lines), uniprocessor and 8-processor runs.

use mempar::MachineConfig;
use mempar_bench::{parse_args, run_app_locality, run_matrix, write_locality_outputs};
use mempar_stats::{format_rows, Row};
use mempar_workloads::App;

fn main() {
    let args = parse_args();
    // Paper values for reference (mp, up); N/A encoded as NaN.
    let paper: &[(&str, f64, f64)] = &[
        ("Em3d", 9.2, 13.0),
        ("Erlebacher", 21.4, 34.3),
        ("FFT", 16.6, 28.9),
        ("LU", 22.7, 23.8),
        ("Mp3d", f64::NAN, 21.7),
        ("MST", f64::NAN, 38.1),
        ("Ocean", -2.9, 21.6),
    ];
    // One job per (application, machine) cell, fanned across worker
    // threads and collected in input order for deterministic output.
    let mut jobs: Vec<(App, bool)> = Vec::new();
    for &app in &args.apps {
        jobs.push((app, false));
        if app.runs_multiprocessor() && app != App::Mp3d {
            // Mp3d is uniprocessor-only on the real machine (Section 4.2).
            jobs.push((app, true));
        }
    }
    let results = run_matrix(args.threads, &jobs, |&(app, mp)| {
        let cfg = MachineConfig::exemplar(if mp { 8 } else { 1 });
        run_app_locality(app, &cfg, args.scale, args.sim_options(), args.locality)
    });
    let mut rows = Vec::new();
    for &app in &args.apps {
        let cell = |mp: bool| {
            jobs.iter()
                .position(|&j| j == (app, mp))
                .map(|i| &results[i].0)
        };
        let up = cell(false).expect("every app has a uniprocessor run");
        let mp_red = match cell(true) {
            Some(mp) => format!("{:5.1}", mp.percent_reduction()),
            None => "  N/A".to_string(),
        };
        let (pm, pu) = paper
            .iter()
            .find(|(n, _, _)| *n == app.name())
            .map(|&(_, m, u)| (m, u))
            .unwrap_or((f64::NAN, f64::NAN));
        rows.push(Row::new(
            app.name(),
            vec![
                mp_red,
                format!("{:5.1}", up.percent_reduction()),
                if pm.is_nan() {
                    "  N/A".into()
                } else {
                    format!("{pm:5.1}")
                },
                format!("{pu:5.1}"),
            ],
        ));
    }
    println!(
        "{}",
        format_rows(
            &format!(
                "Table 3: % execution time reduced, Exemplar-like machine (scale {})",
                args.scale
            ),
            &["mp(8)", "up", "paper-mp", "paper-up"],
            &rows
        )
    );
    // Measured-locality calibration tables (uniprocessor cells only, to
    // keep one row per app).
    let entries: Vec<(&str, &mempar::LocalityArtifacts)> = jobs
        .iter()
        .zip(results.iter())
        .filter_map(|(&(app, mp), (_, a))| {
            (!mp).then_some(()).and(a.as_ref()).map(|a| (app.name(), a))
        })
        .collect();
    write_locality_outputs(&args, &entries);
}
