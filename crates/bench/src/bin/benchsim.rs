//! Regenerates `BENCH_sim.json`: simulator throughput (simulated cycles
//! per host second) for a fixed set of experiments, under the three
//! clock drivers (strict one-cycle-at-a-time reference, event-horizon
//! cycle skipping, discrete-event stepping) plus a tree-walking
//! interpreter leg and — for multiprocessor experiments — the event
//! stepper's sharded mode at 2 and 4 worker threads. Each experiment
//! also runs once per alternative coherence protocol (MESI, MOESI,
//! Dragon) under the event driver, recording what each machine costs in
//! simulated cycles relative to the directory baseline. The JSON carries
//! the resulting stepper-vs-strict, shard-scaling,
//! bytecode-vs-tree-walk, and per-protocol cycle ratios, plus the
//! composition-tuner legs (`"tune"` array): base vs paper-default
//! driver vs tuned simulated cycles with the `tuned_vs_default`
//! headline ratio (DESIGN.md §13).
//!
//! The runs are timed **serially** (unlike the other harness binaries) so
//! host contention cannot distort the throughput numbers, and the cycle
//! counts of all directory modes are asserted identical — no stepper,
//! shard count, or engine swap may ever change results, only speed. The
//! protocol legs have their own cycle counts but must reproduce the
//! directory leg's functional results (retired ops, loads/stores, memory
//! fingerprint) exactly.
//!
//! ```text
//! cargo run --release -p mempar-bench --bin benchsim -- --scale 0.1
//! ```

use mempar::{measure_locality, sim_reuse_profiler};
use mempar_analysis::Locality;
use mempar_bench::{
    bench_sim_json, log_enabled, parse_args, timed, FrontendBenchRecord, LocalityBenchRecord,
    LogLevel, SimBenchRecord, TuneBenchRecord,
};
use mempar_ir::{BytecodeProgram, Interp, Vm};
use mempar_sim::{
    run_program_observed, run_program_observed_reuse, run_program_with, Engine, MachineConfig,
    Protocol, ReuseConfig, SimOptions, Stepper, Tracer,
};
use mempar_tune::{tune_workload, TuneOptions, Tuner};
use mempar_workloads::App;

fn main() {
    let args = parse_args();
    // Latbench's pointer chase is the headline (window-full dependent
    // misses — the best case for skipping); Erlebacher and FFT cover a
    // regular uniprocessor stream and a barrier-synchronized
    // multiprocessor run.
    let experiments: &[(&str, App, bool)] = &[
        ("latbench-up", App::Latbench, false),
        ("erlebacher-up", App::Erlebacher, false),
        ("fft-mp", App::Fft, true),
    ];
    let base_modes: &[(&str, Stepper, usize, Engine)] = &[
        ("strict-cycle", Stepper::Strict, 1, Engine::Bytecode),
        ("cycle-skip", Stepper::Skip, 1, Engine::Bytecode),
        ("event", Stepper::Event, 1, Engine::Bytecode),
        // The engine comparison rides the fastest stepper so the
        // front-end difference is least diluted by the timing model.
        ("tree-walk", Stepper::Event, 1, Engine::Interp),
    ];
    // Shard scaling only makes sense where there are cores to shard.
    let shard_modes: &[(&str, Stepper, usize, Engine)] = &[
        ("event-sh2", Stepper::Event, 2, Engine::Bytecode),
        ("event-sh4", Stepper::Event, 4, Engine::Bytecode),
    ];
    let mut records: Vec<SimBenchRecord> = Vec::new();
    let mut frontend: Vec<FrontendBenchRecord> = Vec::new();
    let mut locality: Vec<LocalityBenchRecord> = Vec::new();
    for &(name, app, mp) in experiments {
        let mut cycles_by_mode = Vec::new();
        // Functional reference from the directory event leg: the
        // protocol legs below must reproduce it exactly.
        let mut func_ref = None;
        let modes = base_modes
            .iter()
            .chain(if mp { shard_modes } else { &[] })
            .copied();
        for (mode, stepper, shards, engine) in modes {
            let w = app.build(args.scale);
            let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
            let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
            // Min-of-N wall time: the skip legs finish in well under a
            // second, where a single run is hostage to host noise, so
            // short legs get more samples (at least 3, up to 8, until
            // ~1s of repetitions has accumulated).
            let mut best = None;
            let mut reps = 0;
            let mut total = 0.0;
            let mut fingerprint = 0u64;
            while reps < 3 || (reps < 8 && total < 1.0) {
                let mut mem = w.memory(nprocs);
                let (r, secs) = timed(|| {
                    run_program_with(
                        &w.program,
                        &mut mem,
                        &cfg,
                        SimOptions {
                            stepper,
                            shards,
                            engine,
                            protocol: Protocol::Directory,
                        },
                    )
                });
                reps += 1;
                total += secs;
                fingerprint = mem.fingerprint();
                if best.as_ref().is_none_or(|&(_, b)| secs < b) {
                    best = Some((r, secs));
                }
            }
            let (r, secs) = best.expect("at least one rep");
            if log_enabled(LogLevel::Info) {
                eprintln!(
                    "[{name}] {mode}: {} cycles in {secs:.3}s = {:.0} cycles/sec",
                    r.cycles,
                    r.cycles as f64 / secs.max(1e-12)
                );
            }
            cycles_by_mode.push(r.cycles);
            if mode == "event" {
                func_ref = Some((r.retired, r.counters.loads, r.counters.stores, fingerprint));
            }
            records.push(SimBenchRecord {
                experiment: name.to_string(),
                mode: mode.to_string(),
                cycles: r.cycles,
                cores: nprocs,
                wall_seconds: secs,
                // The occupancy summary only needs recording once per
                // experiment; every mode produces an identical histogram,
                // so attach it to the default (event) run.
                occupancy: (mode == "event").then(|| r.occupancy.clone()),
            });
        }
        assert!(
            cycles_by_mode.windows(2).all(|w| w[0] == w[1]),
            "{name}: stepper, shard count, or engine changed the simulated cycle count: \
             {cycles_by_mode:?}"
        );
        // Alternative coherence machines under the event driver. Their
        // cycle counts are their own (so they stay OUT of the cross-mode
        // equality assertion above — the per-protocol dimension is the
        // point), but functional results must match the directory leg
        // bit-for-bit.
        let protocol_modes: &[(&str, Protocol)] = &[
            ("event-mesi", Protocol::Mesi),
            ("event-moesi", Protocol::Moesi),
            ("event-dragon", Protocol::Dragon),
        ];
        for &(mode, protocol) in protocol_modes {
            let w = app.build(args.scale);
            let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
            let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
            let mut best = None;
            let mut reps = 0;
            let mut total = 0.0;
            let mut fingerprint = 0u64;
            while reps < 3 || (reps < 8 && total < 1.0) {
                let mut mem = w.memory(nprocs);
                let (r, secs) = timed(|| {
                    run_program_with(
                        &w.program,
                        &mut mem,
                        &cfg,
                        SimOptions {
                            stepper: Stepper::Event,
                            shards: 1,
                            engine: Engine::Bytecode,
                            protocol,
                        },
                    )
                });
                reps += 1;
                total += secs;
                fingerprint = mem.fingerprint();
                if best.as_ref().is_none_or(|&(_, b)| secs < b) {
                    best = Some((r, secs));
                }
            }
            let (r, secs) = best.expect("at least one rep");
            let reference = func_ref.expect("directory event leg always runs first");
            assert_eq!(
                (r.retired, r.counters.loads, r.counters.stores, fingerprint),
                reference,
                "{name}: protocol {protocol} changed functional results"
            );
            if log_enabled(LogLevel::Info) {
                eprintln!(
                    "[{name}] {mode}: {} cycles in {secs:.3}s = {:.0} cycles/sec",
                    r.cycles,
                    r.cycles as f64 / secs.max(1e-12)
                );
            }
            records.push(SimBenchRecord {
                experiment: name.to_string(),
                mode: mode.to_string(),
                cycles: r.cycles,
                cores: nprocs,
                wall_seconds: secs,
                occupancy: None,
            });
        }
        // Isolated front-end drain: the same dynamic-op stream with no
        // timing model attached. The simulated runs above spend most of
        // their host time in the timing model, so `engine_speedup` sits
        // near 1 by Amdahl's law; the drain is where the engine swap is
        // visible (DESIGN.md §9b).
        let w = app.build(args.scale);
        let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
        let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
        let code = BytecodeProgram::compile(&w.program);
        let mut ops = 0u64;
        {
            let mut mem = w.memory(nprocs);
            let mut vm = Vm::new(&code, 0, nprocs);
            while vm.next_op(&mut mem).is_some() {
                ops += 1;
            }
        }
        let reps = (4_000_000 / ops.max(1)).clamp(1, 100) as u32;
        let min_of_3 = |drain: &dyn Fn()| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let (_, secs) = timed(|| {
                    for _ in 0..reps {
                        drain();
                    }
                });
                best = best.min(secs);
            }
            best / reps as f64
        };
        let interp_seconds = min_of_3(&|| {
            let mut mem = w.memory(nprocs);
            let mut it = Interp::new(&w.program, 0, nprocs);
            while it.next_op(&mut mem).is_some() {}
        });
        let bytecode_seconds = min_of_3(&|| {
            let mut mem = w.memory(nprocs);
            let mut vm = Vm::new(&code, 0, nprocs);
            while vm.next_op(&mut mem).is_some() {}
        });
        let f = FrontendBenchRecord {
            experiment: name.to_string(),
            ops,
            interp_seconds,
            bytecode_seconds,
        };
        if log_enabled(LogLevel::Info) {
            eprintln!(
                "[{name}] frontend drain: {ops} ops, interp {:.1} ns/op, bytecode {:.1} ns/op = {:.2}x",
                f.interp_seconds * 1e9 / ops.max(1) as f64,
                f.bytecode_seconds * 1e9 / ops.max(1) as f64,
                f.speedup()
            );
        }
        frontend.push(f);
        // Measured-locality overhead legs (DESIGN.md §12). (a) The
        // sampled reuse-distance pre-pass (`measure_locality`) against a
        // plain single-stream interpreter drain of the same op stream —
        // both walk `Interp::new(prog, 0, 1)` over a fresh memory, so
        // the ratio is exactly what SHARDS sampling costs. (b) The
        // in-sim fetch-stage tap: an observed event run with the
        // profiler attached against an identical run with it off. The
        // tap is pure observation, so both observed legs must land on
        // the exact simulated cycle count of the untraced event legs
        // above — asserted here before the ratio is recorded.
        let drain_seconds = min_of_3(&|| {
            let mut mem = w.memory(1);
            let mut it = Interp::new(&w.program, 0, 1);
            while it.next_op(&mut mem).is_some() {}
        });
        let prepass_seconds = min_of_3(&|| {
            let mut mem = w.memory(1);
            let _ = measure_locality(&w.program, &mut mem, &cfg, ReuseConfig::default());
        });
        let mut reuse_mem = w.memory(1);
        let (_, report) =
            measure_locality(&w.program, &mut reuse_mem, &cfg, ReuseConfig::default());
        let opts = SimOptions {
            stepper: Stepper::Event,
            shards: 1,
            engine: Engine::Bytecode,
            protocol: Protocol::Directory,
        };
        let mut sim_best = f64::INFINITY;
        let mut tap_best = f64::INFINITY;
        for _ in 0..3 {
            let mut mem = w.memory(nprocs);
            let ((r_off, _), secs) = timed(|| {
                run_program_observed(&w.program, &mut mem, &cfg, opts, Tracer::with_capacity(0))
            });
            assert_eq!(
                r_off.cycles, cycles_by_mode[0],
                "{name}: attaching the tracer drifted the simulated cycle count"
            );
            sim_best = sim_best.min(secs);
            let mut mem = w.memory(nprocs);
            let ((r_tap, _, _), secs) = timed(|| {
                run_program_observed_reuse(
                    &w.program,
                    &mut mem,
                    &cfg,
                    opts,
                    Tracer::with_capacity(0),
                    sim_reuse_profiler(&w.program, &cfg, ReuseConfig::default()),
                )
            });
            assert_eq!(
                r_tap.cycles, cycles_by_mode[0],
                "{name}: the reuse tap drifted the simulated cycle count"
            );
            tap_best = tap_best.min(secs);
        }
        let l = LocalityBenchRecord {
            experiment: name.to_string(),
            accesses: report.accesses,
            sampling_rate: report.sampling_rate,
            sampled: report.sampled,
            drain_seconds,
            prepass_seconds,
            sim_seconds: sim_best,
            sim_tap_seconds: tap_best,
        };
        if log_enabled(LogLevel::Info) {
            eprintln!(
                "[{name}] reuse profiler: {} accesses, rate {:.4}, pre-pass {:.2}x drain, in-sim tap {:.2}x",
                l.accesses,
                l.sampling_rate,
                l.prepass_overhead(),
                l.tap_overhead()
            );
        }
        locality.push(l);
    }
    // Composition-tuner legs (DESIGN.md §13): the three throughput
    // experiments plus two extra uniprocessor workloads where the
    // search has headroom over the analytic recipe. One tuner across
    // all legs shares the score memo; wall time is the whole search
    // (enumeration + oracle checks + scoring), not one simulation.
    let tune_experiments: &[(&str, App, bool)] = &[
        ("latbench-up", App::Latbench, false),
        ("erlebacher-up", App::Erlebacher, false),
        ("fft-mp", App::Fft, true),
        ("em3d-up", App::Em3d, false),
        ("ocean-up", App::Ocean, false),
    ];
    let tuner = Tuner::new(TuneOptions::default());
    let mut tune = Vec::new();
    for &(name, app, mp) in tune_experiments {
        let w = app.build(args.scale);
        let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
        let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
        let ((_, report, _), secs) = timed(|| tune_workload(&w, &cfg, &tuner, Locality::Analytic));
        assert!(
            report.oracle_failures.is_empty(),
            "{name}: tuner scored a semantics-changing candidate: {:?}",
            report.oracle_failures
        );
        if log_enabled(LogLevel::Info) {
            eprintln!(
                "[{name}] tune: base {} -> default {} -> tuned {} (x{:.3} vs default, {} scored, {secs:.2}s)",
                report.base_cycles,
                report.default_cycles,
                report.tuned_cycles,
                report.tuned_vs_default(),
                report.stats.scored
            );
        }
        let mut rec = TuneBenchRecord::from_report(&report, secs);
        rec.experiment = name.to_string();
        tune.push(rec);
    }

    let json = bench_sim_json(args.scale, &records, &frontend, &locality, &tune);
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");
    if log_enabled(LogLevel::Info) {
        eprintln!("wrote BENCH_sim.json");
    }
}
