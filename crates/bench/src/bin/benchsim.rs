//! Regenerates `BENCH_sim.json`: simulator throughput (simulated cycles
//! per host second) for a fixed set of experiments, under both the
//! event-horizon cycle-skipping driver and the strict one-cycle-at-a-time
//! reference, plus a tree-walking-interpreter leg — and the resulting
//! skip-vs-strict and bytecode-vs-tree-walk speedup ratios.
//!
//! The runs are timed **serially** (unlike the other harness binaries) so
//! host contention cannot distort the throughput numbers, and the cycle
//! counts of all three modes are asserted identical — neither the
//! skipping optimization nor the engine swap may ever change results,
//! only speed.
//!
//! ```text
//! cargo run --release -p mempar-bench --bin benchsim -- --scale 0.1
//! ```

use mempar_bench::{
    bench_sim_json, log_enabled, parse_args, timed, FrontendBenchRecord, LogLevel, SimBenchRecord,
};
use mempar_ir::{BytecodeProgram, Interp, Vm};
use mempar_sim::{run_program_with, Engine, MachineConfig, SimOptions};
use mempar_workloads::App;

fn main() {
    let args = parse_args();
    // Latbench's pointer chase is the headline (window-full dependent
    // misses — the best case for skipping); Erlebacher and FFT cover a
    // regular uniprocessor stream and a barrier-synchronized
    // multiprocessor run.
    let experiments: &[(&str, App, bool)] = &[
        ("latbench-up", App::Latbench, false),
        ("erlebacher-up", App::Erlebacher, false),
        ("fft-mp", App::Fft, true),
    ];
    let modes: &[(&str, bool, Engine)] = &[
        ("strict-cycle", false, Engine::Bytecode),
        ("cycle-skip", true, Engine::Bytecode),
        ("tree-walk", true, Engine::Interp),
    ];
    let mut records: Vec<SimBenchRecord> = Vec::new();
    let mut frontend: Vec<FrontendBenchRecord> = Vec::new();
    for &(name, app, mp) in experiments {
        let mut cycles_by_mode = Vec::new();
        for &(mode, cycle_skip, engine) in modes {
            let w = app.build(args.scale);
            let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
            let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
            // Min-of-N wall time: the skip legs finish in well under a
            // second, where a single run is hostage to host noise, so
            // short legs get more samples (at least 3, up to 8, until
            // ~1s of repetitions has accumulated).
            let mut best = None;
            let mut reps = 0;
            let mut total = 0.0;
            while reps < 3 || (reps < 8 && total < 1.0) {
                let mut mem = w.memory(nprocs);
                let (r, secs) = timed(|| {
                    run_program_with(
                        &w.program,
                        &mut mem,
                        &cfg,
                        SimOptions { cycle_skip, engine },
                    )
                });
                reps += 1;
                total += secs;
                if best.as_ref().is_none_or(|&(_, b)| secs < b) {
                    best = Some((r, secs));
                }
            }
            let (r, secs) = best.expect("at least one rep");
            if log_enabled(LogLevel::Info) {
                eprintln!(
                    "[{name}] {mode}: {} cycles in {secs:.3}s = {:.0} cycles/sec",
                    r.cycles,
                    r.cycles as f64 / secs.max(1e-12)
                );
            }
            cycles_by_mode.push(r.cycles);
            records.push(SimBenchRecord {
                experiment: name.to_string(),
                mode: mode.to_string(),
                cycles: r.cycles,
                wall_seconds: secs,
                // The occupancy summary only needs recording once per
                // experiment; every mode produces an identical histogram,
                // so attach it to the default (cycle-skip) run.
                occupancy: (mode == "cycle-skip").then(|| r.occupancy.clone()),
            });
        }
        assert!(
            cycles_by_mode.windows(2).all(|w| w[0] == w[1]),
            "{name}: driver mode or engine changed the simulated cycle count: {cycles_by_mode:?}"
        );
        // Isolated front-end drain: the same dynamic-op stream with no
        // timing model attached. The simulated runs above spend most of
        // their host time in the timing model, so `engine_speedup` sits
        // near 1 by Amdahl's law; the drain is where the engine swap is
        // visible (DESIGN.md §9b).
        let w = app.build(args.scale);
        let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
        let code = BytecodeProgram::compile(&w.program);
        let mut ops = 0u64;
        {
            let mut mem = w.memory(nprocs);
            let mut vm = Vm::new(&code, 0, nprocs);
            while vm.next_op(&mut mem).is_some() {
                ops += 1;
            }
        }
        let reps = (4_000_000 / ops.max(1)).clamp(1, 100) as u32;
        let min_of_3 = |drain: &dyn Fn()| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let (_, secs) = timed(|| {
                    for _ in 0..reps {
                        drain();
                    }
                });
                best = best.min(secs);
            }
            best / reps as f64
        };
        let interp_seconds = min_of_3(&|| {
            let mut mem = w.memory(nprocs);
            let mut it = Interp::new(&w.program, 0, nprocs);
            while it.next_op(&mut mem).is_some() {}
        });
        let bytecode_seconds = min_of_3(&|| {
            let mut mem = w.memory(nprocs);
            let mut vm = Vm::new(&code, 0, nprocs);
            while vm.next_op(&mut mem).is_some() {}
        });
        let f = FrontendBenchRecord {
            experiment: name.to_string(),
            ops,
            interp_seconds,
            bytecode_seconds,
        };
        if log_enabled(LogLevel::Info) {
            eprintln!(
                "[{name}] frontend drain: {ops} ops, interp {:.1} ns/op, bytecode {:.1} ns/op = {:.2}x",
                f.interp_seconds * 1e9 / ops.max(1) as f64,
                f.bytecode_seconds * 1e9 / ops.max(1) as f64,
                f.speedup()
            );
        }
        frontend.push(f);
    }
    let json = bench_sim_json(args.scale, &records, &frontend);
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");
    if log_enabled(LogLevel::Info) {
        eprintln!("wrote BENCH_sim.json");
    }
}
