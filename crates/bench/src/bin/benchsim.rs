//! Regenerates `BENCH_sim.json`: simulator throughput (simulated cycles
//! per host second) for a fixed set of experiments, under both the
//! event-horizon cycle-skipping driver and the strict one-cycle-at-a-time
//! reference, plus the resulting speedup ratios.
//!
//! The runs are timed **serially** (unlike the other harness binaries) so
//! host contention cannot distort the throughput numbers, and the cycle
//! counts of the two driver modes are asserted identical — the skipping
//! optimization must never change results, only speed.
//!
//! ```text
//! cargo run --release -p mempar-bench --bin benchsim -- --scale 0.1
//! ```

use mempar_bench::{bench_sim_json, log_enabled, parse_args, timed, LogLevel, SimBenchRecord};
use mempar_sim::{run_program_with, MachineConfig, SimOptions};
use mempar_workloads::App;

fn main() {
    let args = parse_args();
    // Latbench's pointer chase is the headline (window-full dependent
    // misses — the best case for skipping); Erlebacher and FFT cover a
    // regular uniprocessor stream and a barrier-synchronized
    // multiprocessor run.
    let experiments: &[(&str, App, bool)] = &[
        ("latbench-up", App::Latbench, false),
        ("erlebacher-up", App::Erlebacher, false),
        ("fft-mp", App::Fft, true),
    ];
    let mut records: Vec<SimBenchRecord> = Vec::new();
    for &(name, app, mp) in experiments {
        let mut cycles_by_mode = Vec::new();
        for (mode, cycle_skip) in [("strict-cycle", false), ("cycle-skip", true)] {
            let w = app.build(args.scale);
            let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
            let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
            let mut mem = w.memory(nprocs);
            let (r, secs) =
                timed(|| run_program_with(&w.program, &mut mem, &cfg, SimOptions { cycle_skip }));
            if log_enabled(LogLevel::Info) {
                eprintln!(
                    "[{name}] {mode}: {} cycles in {secs:.3}s = {:.0} cycles/sec",
                    r.cycles,
                    r.cycles as f64 / secs.max(1e-12)
                );
            }
            cycles_by_mode.push(r.cycles);
            records.push(SimBenchRecord {
                experiment: name.to_string(),
                mode: mode.to_string(),
                cycles: r.cycles,
                wall_seconds: secs,
                // The occupancy summary only needs recording once per
                // experiment; both driver modes produce identical
                // histograms, so attach it to the skipping run.
                occupancy: cycle_skip.then(|| r.occupancy.clone()),
            });
        }
        assert_eq!(
            cycles_by_mode[0], cycles_by_mode[1],
            "{name}: cycle-skip changed the simulated cycle count"
        );
    }
    let json = bench_sim_json(args.scale, &records);
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");
    if log_enabled(LogLevel::Info) {
        eprintln!("wrote BENCH_sim.json");
    }
}
