//! Regenerates Figure 4: L2 MSHR occupancy curves for Ocean and LU
//! (the two extremes), base vs clustered, on the simulated
//! multiprocessor.
//!
//! Figure 4(a): fraction of time at least N MSHRs hold *read* misses
//! (read miss parallelism). Figure 4(b): total occupancy including
//! writes (contention).

use mempar_bench::{
    parse_args, run_app_locality, run_matrix, simulated_config, write_locality_outputs,
};
use mempar_stats::{format_occupancy_curves, render_occupancy_chart};
use mempar_workloads::App;

fn main() {
    let mut args = parse_args();
    if args.apps.len() == 7 {
        // Default: the paper's two extreme applications.
        args.apps = vec![App::Ocean, App::Lu];
    }
    let results = run_matrix(args.threads, &args.apps, |&app| {
        let cfg = simulated_config(app, args.scale, true, false);
        run_app_locality(app, &cfg, args.scale, args.sim_options(), args.locality)
    });
    let pairs: Vec<_> = results.iter().map(|(p, _)| p).collect();
    let mut entries = Vec::new();
    for (&app, pair) in args.apps.iter().zip(&pairs) {
        entries.push((app.name().to_string(), pair.base.occupancy.clone()));
        entries.push((
            format!("{}(clust)", app.name()),
            pair.clustered.occupancy.clone(),
        ));
        println!(
            "{}: mean read MSHR occupancy {:.2} -> {:.2}",
            app.name(),
            pair.base.occupancy.mean_read_occupancy(),
            pair.clustered.occupancy.mean_read_occupancy()
        );
    }
    println!();
    println!(
        "{}",
        format_occupancy_curves(
            &format!(
                "Figure 4(a): read L2 MSHR occupancy (fraction of time >= N), scale {}",
                args.scale
            ),
            &entries,
            true
        )
    );
    println!(
        "{}",
        format_occupancy_curves(
            "Figure 4(b): total L2 MSHR occupancy (reads + writes)",
            &entries,
            false
        )
    );
    println!(
        "{}",
        render_occupancy_chart("Figure 4(a) as a chart:", &entries, true)
    );
    let locality_entries: Vec<(&str, &mempar::LocalityArtifacts)> = args
        .apps
        .iter()
        .zip(results.iter())
        .filter_map(|(app, (_, a))| a.as_ref().map(|a| (app.name(), a)))
        .collect();
    write_locality_outputs(&args, &locality_entries);
}
