//! Regenerates Figure 4: L2 MSHR occupancy curves for Ocean and LU
//! (the two extremes), base vs clustered, on the simulated
//! multiprocessor.
//!
//! Figure 4(a): fraction of time at least N MSHRs hold *read* misses
//! (read miss parallelism). Figure 4(b): total occupancy including
//! writes (contention).

use mempar_bench::{parse_args, run_app, run_matrix, simulated_config};
use mempar_stats::{format_occupancy_curves, render_occupancy_chart};
use mempar_workloads::App;

fn main() {
    let mut args = parse_args();
    if args.apps.len() == 7 {
        // Default: the paper's two extreme applications.
        args.apps = vec![App::Ocean, App::Lu];
    }
    let pairs = run_matrix(args.threads, &args.apps, |&app| {
        let cfg = simulated_config(app, args.scale, true, false);
        run_app(app, &cfg, args.scale, args.sim_options())
    });
    let mut entries = Vec::new();
    for (&app, pair) in args.apps.iter().zip(&pairs) {
        entries.push((app.name().to_string(), pair.base.occupancy.clone()));
        entries.push((
            format!("{}(clust)", app.name()),
            pair.clustered.occupancy.clone(),
        ));
        println!(
            "{}: mean read MSHR occupancy {:.2} -> {:.2}",
            app.name(),
            pair.base.occupancy.mean_read_occupancy(),
            pair.clustered.occupancy.mean_read_occupancy()
        );
    }
    println!();
    println!(
        "{}",
        format_occupancy_curves(
            &format!(
                "Figure 4(a): read L2 MSHR occupancy (fraction of time >= N), scale {}",
                args.scale
            ),
            &entries,
            true
        )
    );
    println!(
        "{}",
        format_occupancy_curves(
            "Figure 4(b): total L2 MSHR occupancy (reads + writes)",
            &entries,
            false
        )
    );
    println!(
        "{}",
        render_occupancy_chart("Figure 4(a) as a chart:", &entries, true)
    );
}
