//! Prints Table 1 — the base simulated configuration — as encoded in
//! [`MachineConfig::base_simulated`], for comparison with the paper.

use mempar::MachineConfig;
use mempar_stats::{format_rows, Row};

fn main() {
    let c = MachineConfig::base_simulated(16, 64 * 1024);
    let l1 = c.l1.as_ref().expect("base config has an L1");
    let rows = vec![
        Row::new("Clock rate", vec![format!("{} MHz", c.proc.clock_mhz)]),
        Row::new("Fetch rate", vec![format!("{} instructions/cycle", c.proc.width)]),
        Row::new("Instruction window", vec![format!("{} in-flight", c.proc.window)]),
        Row::new("Memory queue size", vec![format!("{}", c.proc.mem_queue)]),
        Row::new("Outstanding branches", vec![format!("{}", c.proc.max_branches)]),
        Row::new(
            "Functional units",
            vec![format!(
                "{} ALUs, {} FPUs, {} address units",
                c.proc.fu.alus, c.proc.fu.fpus, c.proc.fu.addr_units
            )],
        ),
        Row::new(
            "FU latencies",
            vec![format!(
                "{} (addr/ALU), {} (FPU), {} (imul/idiv), {} (fdiv), {} (fsqrt)",
                c.proc.fu.int_latency,
                c.proc.fu.fp_latency,
                c.proc.fu.int_mul_latency,
                c.proc.fu.fp_div_latency,
                c.proc.fu.fp_sqrt_latency
            )],
        ),
        Row::new(
            "L1 D-cache",
            vec![format!(
                "{} KB, {}-way, {} ports, {} MSHRs, {}B line",
                l1.size_bytes / 1024,
                l1.assoc,
                l1.ports,
                l1.mshrs,
                l1.line_bytes
            )],
        ),
        Row::new(
            "L2 cache",
            vec![format!(
                "64 KB or 1 MB (per app), {}-way, {} port, {} MSHRs, {}B line, pipelined",
                c.l2.assoc, c.l2.ports, c.l2.mshrs, c.l2.line_bytes
            )],
        ),
        Row::new(
            "Memory banks",
            vec![format!("{}-way, {:?} interleaving", c.mem.banks, c.mem.interleave)],
        ),
        Row::new(
            "Bus",
            vec![format!(
                "{}x processor cycle, {} bits, split transaction",
                c.bus.cycle_ratio,
                c.bus.width_bytes * 8
            )],
        ),
        Row::new(
            "Network",
            vec![format!(
                "2D mesh, {}x processor cycle, {} bits, flit delay {} network cycles/hop",
                c.net.cycle_ratio,
                c.net.flit_bytes * 8,
                c.net.hop_cycles
            )],
        ),
    ];
    println!("{}", format_rows("Table 1: base simulated configuration", &["value"], &rows));
    println!(
        "Unloaded latencies (cycles): L1 hit {}, L2 hit {}, local memory ~85,",
        l1.hit_latency, c.l2.hit_latency
    );
    println!("remote 180-260, cache-to-cache 210-310 (see sim tests for calibration).");
}
