//! Prints Table 1 — the base simulated configuration — as encoded in
//! [`MachineConfig::base_simulated`], for comparison with the paper.

use mempar::MachineConfig;
use mempar_bench::{parse_args, run_matrix};
use mempar_stats::{format_rows, Row};

/// Each Table 1 row as a function of the configuration, so the listing
/// flows through the same `run_matrix` path as every other harness
/// binary (and `--threads`/`--help` behave uniformly).
const ROWS: &[fn(&MachineConfig) -> Row] = &[
    |c| Row::new("Clock rate", vec![format!("{} MHz", c.proc.clock_mhz)]),
    |c| {
        Row::new(
            "Fetch rate",
            vec![format!("{} instructions/cycle", c.proc.width)],
        )
    },
    |c| {
        Row::new(
            "Instruction window",
            vec![format!("{} in-flight", c.proc.window)],
        )
    },
    |c| Row::new("Memory queue size", vec![format!("{}", c.proc.mem_queue)]),
    |c| {
        Row::new(
            "Outstanding branches",
            vec![format!("{}", c.proc.max_branches)],
        )
    },
    |c| {
        Row::new(
            "Functional units",
            vec![format!(
                "{} ALUs, {} FPUs, {} address units",
                c.proc.fu.alus, c.proc.fu.fpus, c.proc.fu.addr_units
            )],
        )
    },
    |c| {
        Row::new(
            "FU latencies",
            vec![format!(
                "{} (addr/ALU), {} (FPU), {} (imul/idiv), {} (fdiv), {} (fsqrt)",
                c.proc.fu.int_latency,
                c.proc.fu.fp_latency,
                c.proc.fu.int_mul_latency,
                c.proc.fu.fp_div_latency,
                c.proc.fu.fp_sqrt_latency
            )],
        )
    },
    |c| {
        let l1 = c.l1.as_ref().expect("base config has an L1");
        Row::new(
            "L1 D-cache",
            vec![format!(
                "{} KB, {}-way, {} ports, {} MSHRs, {}B line",
                l1.size_bytes / 1024,
                l1.assoc,
                l1.ports,
                l1.mshrs,
                l1.line_bytes
            )],
        )
    },
    |c| {
        Row::new(
            "L2 cache",
            vec![format!(
                "64 KB or 1 MB (per app), {}-way, {} port, {} MSHRs, {}B line, pipelined",
                c.l2.assoc, c.l2.ports, c.l2.mshrs, c.l2.line_bytes
            )],
        )
    },
    |c| {
        Row::new(
            "Memory banks",
            vec![format!(
                "{}-way, {:?} interleaving",
                c.mem.banks, c.mem.interleave
            )],
        )
    },
    |c| {
        Row::new(
            "Bus",
            vec![format!(
                "{}x processor cycle, {} bits, split transaction",
                c.bus.cycle_ratio,
                c.bus.width_bytes * 8
            )],
        )
    },
    |c| {
        Row::new(
            "Network",
            vec![format!(
                "2D mesh, {}x processor cycle, {} bits, flit delay {} network cycles/hop",
                c.net.cycle_ratio,
                c.net.flit_bytes * 8,
                c.net.hop_cycles
            )],
        )
    },
];

fn main() {
    let args = parse_args();
    let c = MachineConfig::base_simulated(16, 64 * 1024);
    let l1 = c.l1.as_ref().expect("base config has an L1");
    let rows = run_matrix(args.threads, ROWS, |f| f(&c));
    println!(
        "{}",
        format_rows("Table 1: base simulated configuration", &["value"], &rows)
    );
    println!(
        "Unloaded latencies (cycles): L1 hit {}, L2 hit {}, local memory ~85,",
        l1.hit_latency, c.l2.hit_latency
    );
    println!("remote 180-260, cache-to-cache 210-310 (see sim tests for calibration).");
}
