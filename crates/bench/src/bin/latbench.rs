//! Regenerates the Section 5.1 Latbench experiment: average read-miss
//! *stall* time before/after clustering (the paper: 171 ns → 32 ns,
//! 5.34×), the contention-driven growth of *total* miss latency
//! (171 ns → 316 ns) and bus/memory-bank utilization (> 85 % clustered).

use mempar::{observe_pair_locality, run_pair_locality, MachineConfig, DEFAULT_TRACE_CAPACITY};
use mempar_bench::{parse_args, run_matrix, write_locality_outputs, write_observation_outputs};
use mempar_stats::{format_rows, Row};
use mempar_workloads::{latbench, LatbenchParams};

fn main() {
    let args = parse_args();
    let params = LatbenchParams::scaled(args.scale);
    println!(
        "Latbench: {} chains x {} derefs, pool {} KB",
        params.chains,
        params.chain_len,
        params.pool * 8 / 1024
    );
    let w = latbench(params);
    // Both machine configurations over the worker pool; results come back
    // in input order (base system first, Exemplar-like second).
    let cfgs = [
        MachineConfig::base_simulated(1, 64 * 1024),
        MachineConfig::exemplar(1),
    ];
    let mut pairs = run_matrix(args.threads, &cfgs, |cfg| {
        run_pair_locality(&w, cfg, args.sim_options(), args.locality)
    });
    let (pair_ex, _) = pairs.pop().expect("exemplar run");
    let (pair, artifacts) = pairs.pop().expect("base run");
    assert!(pair.outputs_match, "clustering changed Latbench results");

    println!("\ntransformations applied:\n{}", pair.report.summary());

    let rows = vec![
        Row::new(
            "avg read-miss stall (ns)",
            vec![
                format!("{:.0}", pair.base.avg_read_miss_stall_ns()),
                format!("{:.0}", pair.clustered.avg_read_miss_stall_ns()),
            ],
        ),
        Row::new(
            "avg total miss latency (ns)",
            vec![
                format!("{:.0}", pair.base.avg_read_miss_latency_ns()),
                format!("{:.0}", pair.clustered.avg_read_miss_latency_ns()),
            ],
        ),
        Row::new(
            "bus utilization",
            vec![
                format!("{:.2}", pair.base.bus_util.fraction()),
                format!("{:.2}", pair.clustered.bus_util.fraction()),
            ],
        ),
        Row::new(
            "memory-bank utilization",
            vec![
                format!("{:.2}", pair.base.bank_util.fraction()),
                format!("{:.2}", pair.clustered.bank_util.fraction()),
            ],
        ),
        Row::new(
            "execution cycles",
            vec![
                format!("{}", pair.base.cycles),
                format!("{}", pair.clustered.cycles),
            ],
        ),
        Row::new(
            "L2 read misses",
            vec![
                format!("{}", pair.base.counters.l2_read_misses),
                format!("{}", pair.clustered.counters.l2_read_misses),
            ],
        ),
    ];
    println!(
        "{}",
        format_rows(
            "Section 5.1 — Latbench (simulated base system)",
            &["base", "clust"],
            &rows
        )
    );
    let speedup =
        pair.base.avg_read_miss_stall_ns() / pair.clustered.avg_read_miss_stall_ns().max(1e-9);
    println!("stall-per-miss speedup: {speedup:.2}x   (paper: 5.34x simulated, 5.77x Exemplar)");

    // The Exemplar-like configuration (second matrix result).
    let sp_ex = pair_ex.base.avg_read_miss_stall_ns()
        / pair_ex.clustered.avg_read_miss_stall_ns().max(1e-9);
    println!(
        "Exemplar-like config: {:.0} ns -> {:.0} ns per miss ({sp_ex:.2}x)",
        pair_ex.base.avg_read_miss_stall_ns(),
        pair_ex.clustered.avg_read_miss_stall_ns(),
    );

    // Observability rerun: same base-system experiment with the tracer
    // attached (bit-identical cycle counts — asserted here), exporting
    // whatever the --trace-out/--metrics-out/--profile-refs flags asked
    // for.
    // Measured-locality outputs: the sampled reuse report and the
    // predicted-vs-measured calibration table (plus --reuse-out JSON).
    if let Some(a) = &artifacts {
        write_locality_outputs(&args, &[("latbench", a)]);
    }

    if args.wants_observation() {
        let (observed, _) = observe_pair_locality(
            &w,
            &cfgs[0],
            DEFAULT_TRACE_CAPACITY,
            args.sim_options(),
            args.locality,
        );
        assert_eq!(
            observed.base.result.cycles, pair.base.cycles,
            "tracing changed the base run's cycle count"
        );
        assert_eq!(
            observed.clustered.result.cycles, pair.clustered.cycles,
            "tracing changed the clustered run's cycle count"
        );
        write_observation_outputs(&args, &[&observed.base, &observed.clustered]);
    }
}
