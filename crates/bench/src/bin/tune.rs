//! The composition autotuner harness: per-nest search over legal
//! transform compositions with the simulator as the cost model
//! (DESIGN.md §13). For every selected application it prints the delta
//! table — base vs the paper-default clustering driver vs the tuned
//! program — and the honest `tuned/default` headline ratio.
//!
//! Modes: `up` (uniprocessor, default) and `mp` (multiprocessor, at
//! each workload's Table 2 processor count).
//!
//! The search trace is observable: `--metrics-out` snapshots the
//! `tune.*` counters per workload, `--trace-out` writes per-candidate
//! scoring slices as a Chrome/Perfetto trace.
//!
//! ```text
//! cargo run --release -p mempar-bench --bin tune -- --scale 0.1 --apps latbench,fft
//! ```

use mempar::MachineConfig;
use mempar_bench::{log_enabled, parse_args, scaled_l2, timed, LogLevel};
use mempar_obs::{escape_json, MetricsRegistry};
use mempar_tune::{export_metrics, tune_trace_json, tune_workload, TuneOptions, Tuner};
use mempar_workloads::App;

fn main() {
    let args = parse_args();
    let mode = if args.mode.is_empty() {
        "up".to_string()
    } else {
        args.mode.clone()
    };
    let mp = match mode.as_str() {
        "up" => false,
        "mp" => true,
        other => {
            eprintln!("unknown --mode {other} (up|mp)");
            std::process::exit(2);
        }
    };
    let mut apps: Vec<App> = args.apps.clone();
    if mp {
        apps.retain(|a| a.runs_multiprocessor());
    }

    // One tuner across the whole run: repeated subproblems between
    // workloads share the score memo.
    let tuner = Tuner::new(TuneOptions {
        sim: args.sim_options(),
        threads: args.threads,
        ..TuneOptions::default()
    });

    let mut reports = Vec::new();
    let mut beat_default = 0usize;
    for &app in &apps {
        let w = app.build(args.scale);
        let nprocs = if args.procs > 0 {
            args.procs
        } else if mp {
            w.mp_procs.max(1)
        } else {
            1
        };
        let cfg = MachineConfig::base_simulated(nprocs, scaled_l2(w.l2_bytes, args.scale));
        if log_enabled(LogLevel::Info) {
            eprintln!("[tune] {} on {} ({nprocs} procs)...", w.name, cfg.name);
        }
        let ((_, report, _), secs) = timed(|| tune_workload(&w, &cfg, &tuner, args.locality));
        assert!(
            report.oracle_failures.is_empty(),
            "{}: tuner scored a semantics-changing candidate: {:?}",
            w.name,
            report.oracle_failures
        );
        if report.tuned_cycles < report.default_cycles {
            beat_default += 1;
        }
        if log_enabled(LogLevel::Info) {
            eprintln!(
                "[tune] {}: {} candidates scored in {secs:.2}s ({} sims, {} memo hits)",
                w.name, report.stats.scored, report.stats.memo_misses, report.stats.memo_hits
            );
        }
        print!("{}", report.summary());
        reports.push(report);
    }
    println!(
        "\nsearch beat the default driver on {beat_default}/{} workloads \
         (tuned/default > 1; the tuner never loses to it)",
        reports.len()
    );

    if let Some(path) = &args.metrics_out {
        // One registry snapshot per workload, so the `tune.*` counters
        // never collide across reports.
        let entries: Vec<String> = reports
            .iter()
            .map(|r| {
                let mut reg = MetricsRegistry::new();
                export_metrics(r, &mut reg);
                format!(
                    "{{\"name\": \"{}\", \"snapshot\": {}}}",
                    escape_json(&r.name),
                    reg.to_json().trim_end()
                )
            })
            .collect();
        let json = format!("{{\n\"runs\": [\n{}\n]\n}}\n", entries.join(",\n"));
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        if log_enabled(LogLevel::Info) {
            eprintln!("wrote tune metrics to {path}");
        }
    }
    if let Some(path) = &args.trace_out {
        let refs: Vec<&_> = reports.iter().collect();
        let json = tune_trace_json(&refs);
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        if log_enabled(LogLevel::Info) {
            eprintln!("wrote tune trace to {path} (open at https://ui.perfetto.dev)");
        }
    }
}
