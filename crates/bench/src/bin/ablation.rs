//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **MSHR sweep** — how many simultaneous misses the hardware must
//!   support for clustering to pay off (the `lp` axis of the framework).
//! * **Window sweep** — clustering's sensitivity to instruction-window
//!   size (`W` in Equation 1).
//! * **Degree sweep** — the framework-chosen unroll-and-jam degree
//!   versus an exhaustive sweep (validating the binary search).
//!
//! Run on Latbench and Erlebacher (one address-recurrence and one
//! cache-line-recurrence workload) by default.

use mempar::{machine_summary, profile_miss_rates, run_program_with, MachineConfig, SimOptions};
use mempar_bench::{parse_args, run_matrix};
use mempar_stats::{format_rows, Row};
use mempar_transform::{
    cluster_program, inner_unroll, innermost_loops, insert_prefetches, schedule_balanced,
    schedule_for_misses, unroll_and_jam,
};
use mempar_workloads::{erlebacher, latbench, mp3d, ErlebacherParams, LatbenchParams, Mp3dParams};

fn main() {
    let args = parse_args();
    let opts = args.sim_options();
    mshr_sweep(args.scale, args.threads, opts);
    window_sweep(args.scale, args.threads, opts);
    degree_sweep(args.scale, args.threads, opts);
    scheduling_comparison(args.scale, args.threads, opts);
    prefetch_vs_clustering(args.scale, args.threads, opts);
}

/// Source order vs balanced scheduling vs the window-aware miss-packing
/// scheduler, on the unrolled Mp3d move loop (Section 3.3's discussion:
/// balanced scheduling "may miss some opportunities since it does not
/// explicitly consider window size").
fn scheduling_comparison(scale: f64, threads: usize, opts: SimOptions) {
    let w = mp3d(Mp3dParams::scaled(scale * 0.5));
    let cfg = MachineConfig::base_simulated(1, mempar_bench::scaled_l2(w.l2_bytes, scale));
    // Unroll the move loop first (both schedulers want material to move).
    let prep = |sched: u8| -> mempar_ir::Program {
        let mut p = w.program.clone();
        let inner = innermost_loops(&p)[0].clone();
        let r = inner_unroll(&mut p, &inner, 6).expect("legal");
        match sched {
            1 => {
                let _ = schedule_balanced(&mut p, &r.main);
            }
            2 => {
                let _ = schedule_for_misses(&mut p, &r.main, cfg.l2.line_bytes);
            }
            _ => {}
        }
        p
    };
    let variants = [
        ("unrolled, source order", 0u8),
        ("balanced", 1),
        ("miss-packing", 2),
    ];
    let rows = run_matrix(threads, &variants, |&(name, sched)| {
        let p = prep(sched);
        let mut mem = w.memory(1);
        let r = run_program_with(&p, &mut mem, &cfg, opts);
        Row::new(name, vec![format!("{}", r.cycles)])
    });
    println!(
        "{}",
        format_rows(
            "Ablation: local scheduling policy (Mp3d move loop, unrolled x6)",
            &["cycles"],
            &rows
        )
    );
}

/// Prefetching vs clustering vs both — the interaction the paper's
/// companion work (TR 9910) studies. Run on Erlebacher (regular,
/// prefetchable) and Latbench (a pointer chase prefetching cannot touch).
fn prefetch_vs_clustering(scale: f64, threads: usize, opts: SimOptions) {
    let mut rows = Vec::new();
    // --- Erlebacher: both techniques apply ---
    {
        let w = erlebacher(ErlebacherParams::scaled(scale));
        let cfg = MachineConfig::base_simulated(1, mempar_bench::scaled_l2(w.l2_bytes, scale));
        let m = machine_summary(&cfg);
        let mut profile_mem = w.memory(1);
        let profile = profile_miss_rates(&w.program, &mut profile_mem, &cfg.l2);

        let mut variants: Vec<(&str, mempar_ir::Program)> = Vec::new();
        variants.push(("base", w.program.clone()));
        let mut pf = w.program.clone();
        for nest in innermost_loops(&pf) {
            let _ = insert_prefetches(&mut pf, &nest, 16, cfg.l2.line_bytes, &profile);
        }
        variants.push(("prefetch", pf));
        let mut cl = w.program.clone();
        cluster_program(&mut cl, &m, &profile);
        variants.push(("cluster", cl));
        let mut both = w.program.clone();
        cluster_program(&mut both, &m, &profile);
        for nest in innermost_loops(&both) {
            let _ = insert_prefetches(&mut both, &nest, 16, cfg.l2.line_bytes, &profile);
        }
        variants.push(("cluster+prefetch", both));
        rows.extend(run_matrix(threads, &variants, |(name, prog)| {
            let mut mem = w.memory(1);
            let r = run_program_with(prog, &mut mem, &cfg, opts);
            Row::new(
                format!("erlebacher/{name}"),
                vec![
                    format!("{}", r.cycles),
                    format!("{}", r.counters.prefetches),
                ],
            )
        }));
    }
    // --- Latbench: the chase defeats prefetching entirely ---
    {
        let w = latbench(LatbenchParams::scaled(scale * 0.5));
        let cfg = MachineConfig::base_simulated(1, w.l2_bytes);
        let m = machine_summary(&cfg);
        let mut profile_mem = w.memory(1);
        let profile = profile_miss_rates(&w.program, &mut profile_mem, &cfg.l2);
        let mut pf = w.program.clone();
        let mut inserted = 0;
        for nest in innermost_loops(&pf) {
            inserted +=
                insert_prefetches(&mut pf, &nest, 8, cfg.l2.line_bytes, &profile).unwrap_or(0);
        }
        let mut cl = w.program.clone();
        cluster_program(&mut cl, &m, &profile);
        let variants = [("base", &w.program), ("prefetch", &pf), ("cluster", &cl)];
        rows.extend(run_matrix(threads, &variants, |&(name, prog)| {
            let mut mem = w.memory(1);
            let r = run_program_with(prog, &mut mem, &cfg, opts);
            Row::new(
                format!("latbench/{name}"),
                vec![
                    format!("{}", r.cycles),
                    format!("{}", r.counters.prefetches),
                ],
            )
        }));
        rows.push(Row::new(
            format!("latbench: {inserted} prefetches insertable (chase)"),
            vec![],
        ));
    }
    println!(
        "{}",
        format_rows(
            "Ablation: software prefetching vs read-miss clustering",
            &["cycles", "prefetches"],
            &rows
        )
    );
}

/// Clustered speedup as the MSHR count varies (1 MSHR = blocking cache).
fn mshr_sweep(scale: f64, threads: usize, opts: SimOptions) {
    let points = [1usize, 2, 4, 8, 10, 16];
    let rows = run_matrix(threads, &points, |&mshrs| {
        let w = latbench(LatbenchParams::scaled(scale * 0.5));
        let mut cfg = MachineConfig::base_simulated(1, w.l2_bytes);
        cfg.l2.mshrs = mshrs;
        if let Some(l1) = cfg.l1.as_mut() {
            l1.mshrs = mshrs;
        }
        cfg.name = format!("mshr-{mshrs}");
        let pair = mempar::run_pair_with(&w, &cfg, opts);
        Row::new(
            format!("{mshrs} MSHRs"),
            vec![
                format!("{}", pair.base.cycles),
                format!("{}", pair.clustered.cycles),
                format!("{:5.1}%", pair.percent_reduction()),
            ],
        )
    });
    println!(
        "{}",
        format_rows(
            "Ablation: MSHR count vs clustering benefit (Latbench)",
            &["base cy", "clust cy", "reduction"],
            &rows
        )
    );
}

/// Clustered speedup as the instruction window varies.
fn window_sweep(scale: f64, threads: usize, opts: SimOptions) {
    let points = [16usize, 32, 64, 128];
    let rows = run_matrix(threads, &points, |&window| {
        let w = erlebacher(ErlebacherParams::scaled(scale));
        let mut cfg = MachineConfig::base_simulated(1, mempar_bench::scaled_l2(w.l2_bytes, scale));
        cfg.proc.window = window;
        cfg.proc.mem_queue = (window / 2).max(8);
        cfg.name = format!("window-{window}");
        let pair = mempar::run_pair_with(&w, &cfg, opts);
        Row::new(
            format!("W={window}"),
            vec![
                format!("{}", pair.base.cycles),
                format!("{}", pair.clustered.cycles),
                format!("{:5.1}%", pair.percent_reduction()),
            ],
        )
    });
    println!(
        "{}",
        format_rows(
            "Ablation: instruction window vs clustering benefit (Erlebacher)",
            &["base cy", "clust cy", "reduction"],
            &rows
        )
    );
}

/// Exhaustive unroll-degree sweep on Latbench's chain loop, marking the
/// degree the framework's binary search picks.
fn degree_sweep(scale: f64, threads: usize, opts: SimOptions) {
    let w = latbench(LatbenchParams::scaled(scale * 0.5));
    let cfg = MachineConfig::base_simulated(1, w.l2_bytes);

    // The framework's choice.
    let mut profile_mem = w.memory(1);
    let profile = profile_miss_rates(&w.program, &mut profile_mem, &cfg.l2);
    let mut framework_prog = w.program.clone();
    let report = cluster_program(&mut framework_prog, &machine_summary(&cfg), &profile);
    let chosen = report.decisions.first().map(|d| d.uaj_degree).unwrap_or(1);

    let degrees = [1u32, 2, 4, 6, 8, 10, 12, 16];
    let rows = run_matrix(threads, &degrees, |&degree| {
        let mut prog = w.program.clone();
        let inner = innermost_loops(&prog)[0].clone();
        let parent = inner.parent().expect("chain loop");
        if degree > 1 {
            unroll_and_jam(&mut prog, &parent, degree).expect("legal");
        }
        let mut mem = w.memory(1);
        let r = run_program_with(&prog, &mut mem, &cfg, opts);
        Row::new(
            format!(
                "degree {degree}{}",
                if degree == chosen {
                    "  <- framework"
                } else {
                    ""
                }
            ),
            vec![format!("{}", r.cycles)],
        )
    });
    println!(
        "{}",
        format_rows(
            &format!("Ablation: unroll-and-jam degree sweep (Latbench; framework picked {chosen})"),
            &["cycles"],
            &rows
        )
    );
}
