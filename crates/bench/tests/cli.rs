//! Error-path tests for the shared `parse_args` CLI, driven through a
//! real binary so the exit status and stderr contract is what users see.
//!
//! All harness binaries share `mempar_bench::parse_args`, so one binary
//! (`table2`) stands in for all of them.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    run_env(args, &[])
}

fn run_env(args: &[&str], env: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table2"));
    // The test runner's environment must not leak into the contract
    // under test.
    cmd.env_remove("MEMPAR_LOG");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.args(args).output().expect("spawn table2")
}

fn assert_usage_exit(args: &[&str], needle: &str) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "args {args:?}: expected exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "args {args:?}: stderr missing {needle:?}:\n{stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "args {args:?}: stderr missing usage string:\n{stderr}"
    );
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    assert_usage_exit(&["--bogus"], "unknown flag --bogus");
}

#[test]
fn malformed_threads_exits_2_with_usage() {
    assert_usage_exit(&["--threads", "many"], "--threads expects an integer");
}

#[test]
fn zero_scale_exits_2_with_usage() {
    assert_usage_exit(&["--scale", "0"], "--scale expects a positive float");
    assert_usage_exit(&["--scale", "-1.5"], "--scale expects a positive float");
    assert_usage_exit(&["--scale", "nan"], "--scale expects a positive float");
}

#[test]
fn missing_value_exits_2_with_usage() {
    assert_usage_exit(&["--scale"], "missing value for --scale");
}

#[test]
fn unknown_app_exits_2_with_usage() {
    assert_usage_exit(&["--apps", "NotAnApp"], "unknown app NotAnApp");
}

#[test]
fn help_exits_0_and_prints_usage_to_stdout() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage:"));
    // The observability and logging flags are part of the documented
    // surface.
    for flag in [
        "--trace-out",
        "--metrics-out",
        "--profile-refs",
        "--quiet",
        "--engine",
        "--stepper",
        "--shards",
        "--protocol",
        "--locality",
        "--reuse-out",
        "MEMPAR_LOG",
    ] {
        assert!(stdout.contains(flag), "usage missing {flag}:\n{stdout}");
    }
    // The protocol menu is part of the documented surface too.
    for name in ["directory", "mesi", "moesi", "dragon"] {
        assert!(
            stdout.contains(name),
            "usage missing protocol {name}:\n{stdout}"
        );
    }
}

#[test]
fn unknown_engine_exits_2_with_usage() {
    assert_usage_exit(&["--engine", "jit"], "unknown engine 'jit'");
}

#[test]
fn unknown_stepper_exits_2_with_usage() {
    assert_usage_exit(&["--stepper", "turbo"], "unknown stepper 'turbo'");
}

#[test]
fn unknown_protocol_exits_2_with_usage() {
    assert_usage_exit(&["--protocol", "mosi"], "unknown protocol 'mosi'");
    assert_usage_exit(&["--protocol"], "missing value for --protocol");
}

#[test]
fn unknown_locality_exits_2_with_usage() {
    assert_usage_exit(
        &["--locality", "psychic"],
        "unknown locality mode 'psychic'",
    );
    assert_usage_exit(&["--locality"], "missing value for --locality");
}

#[test]
fn reuse_out_without_measured_exits_2_with_usage() {
    assert_usage_exit(
        &["--reuse-out", "r.json"],
        "--reuse-out requires --locality measured",
    );
    assert_usage_exit(
        &["--reuse-out", "r.json", "--locality", "analytic"],
        "--reuse-out requires --locality measured",
    );
}

#[test]
fn malformed_shards_exits_2_with_usage() {
    assert_usage_exit(&["--shards", "many"], "--shards expects a positive integer");
    assert_usage_exit(&["--shards", "0"], "--shards expects a positive integer");
}

#[test]
fn shards_without_event_stepper_exits_2_with_usage() {
    assert_usage_exit(
        &["--stepper", "skip", "--shards", "4"],
        "--shards 4 requires --stepper event",
    );
    // Order of flags must not matter.
    assert_usage_exit(
        &["--shards", "2", "--stepper", "strict"],
        "--shards 2 requires --stepper event",
    );
}

#[test]
fn stepper_and_shard_choices_never_change_results() {
    let reference = run(&["--scale", "0.02", "-q"]);
    assert_eq!(reference.status.code(), Some(0));
    let reference = String::from_utf8_lossy(&reference.stdout).into_owned();
    for args in [
        &["--scale", "0.02", "-q", "--stepper", "strict"][..],
        &["--scale", "0.02", "-q", "--stepper", "skip"][..],
        &["--scale", "0.02", "-q", "--stepper", "event"][..],
        &[
            "--scale",
            "0.02",
            "-q",
            "--stepper",
            "event",
            "--shards",
            "2",
        ][..],
        &[
            "--scale",
            "0.02",
            "-q",
            "--stepper",
            "event",
            "--shards",
            "4",
        ][..],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(0), "args {args:?}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            reference,
            "args {args:?}: table2 output must be byte-identical across \
             steppers and shard counts"
        );
    }
}

#[test]
fn protocol_choice_never_changes_results() {
    // The catalog is purely functional output, so it must be
    // byte-identical under every coherence machine (protocols move
    // cycle counts only; those are pinned by the per-protocol golden
    // snapshots, not this contract).
    let reference = run(&["--scale", "0.02", "-q"]);
    assert_eq!(reference.status.code(), Some(0));
    let reference = String::from_utf8_lossy(&reference.stdout).into_owned();
    for protocol in ["directory", "mesi", "moesi", "dragon"] {
        let out = run(&["--scale", "0.02", "-q", "--protocol", protocol]);
        assert_eq!(out.status.code(), Some(0), "--protocol {protocol}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            reference,
            "--protocol {protocol}: table2 output must be byte-identical \
             across coherence protocols"
        );
    }
}

#[test]
fn latbench_accepts_every_protocol() {
    // Latbench internally asserts that clustering preserves functional
    // results, so a clean exit under each machine doubles as a
    // conformance check on the full base-vs-clustered pipeline.
    for protocol in ["directory", "mesi", "moesi", "dragon"] {
        let out = Command::new(env!("CARGO_BIN_EXE_latbench"))
            .env_remove("MEMPAR_LOG")
            .args(["--scale", "0.02", "-q", "--protocol", protocol])
            .output()
            .expect("spawn latbench");
        assert_eq!(
            out.status.code(),
            Some(0),
            "latbench --protocol {protocol}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("Latbench:"),
            "latbench --protocol {protocol} produced no report"
        );
    }
}

#[test]
fn engine_choice_never_changes_results() {
    let vm = run(&["--scale", "0.02", "-q", "--engine", "bytecode"]);
    let tw = run(&["--scale", "0.02", "-q", "--engine", "interp"]);
    assert_eq!(vm.status.code(), Some(0));
    assert_eq!(tw.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&vm.stdout),
        String::from_utf8_lossy(&tw.stdout),
        "table2 output must be byte-identical under both engines"
    );
}

#[test]
fn tune_shares_the_cli_contract() {
    // The tuner harness rides the same parse_args surface: bad flags
    // exit 2 with usage, and a bad --mode is its own exit-2 path.
    let bad = Command::new(env!("CARGO_BIN_EXE_tune"))
        .env_remove("MEMPAR_LOG")
        .args(["--bogus"])
        .output()
        .expect("spawn tune");
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("usage:"));

    let bad_mode = Command::new(env!("CARGO_BIN_EXE_tune"))
        .env_remove("MEMPAR_LOG")
        .args(["--mode", "sideways"])
        .output()
        .expect("spawn tune");
    assert_eq!(bad_mode.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&bad_mode.stderr).contains("unknown --mode sideways"),
        "stderr: {}",
        String::from_utf8_lossy(&bad_mode.stderr)
    );
}

#[test]
fn tune_beats_base_and_exports_its_trace() {
    let dir = std::env::temp_dir().join(format!("mempar-tune-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let metrics = dir.join("tune-metrics.json");
    let trace = dir.join("tune-trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_tune"))
        .env_remove("MEMPAR_LOG")
        .args([
            "--scale",
            "0.05",
            "--apps",
            "latbench",
            "-q",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn tune");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("tuned/default x"),
        "delta table missing: {stdout}"
    );
    assert!(
        stdout.contains("beat the default driver on"),
        "headline missing: {stdout}"
    );
    // The exported search trace is valid JSON with the tune.* counters
    // and per-candidate Perfetto slices.
    let metrics_json = std::fs::read_to_string(&metrics).expect("metrics written");
    mempar_obs::validate_json(&metrics_json).expect("metrics JSON well-formed");
    assert!(metrics_json.contains("tune.scored"));
    assert!(metrics_json.contains("tune.cycles.tuned"));
    let trace_json = std::fs::read_to_string(&trace).expect("trace written");
    mempar_obs::validate_json(&trace_json).expect("trace JSON well-formed");
    assert!(trace_json.contains("\"ph\":\"X\""));
    assert!(trace_json.contains("memo_hit"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_mempar_log_exits_2_with_usage() {
    let out = run_env(&[], &[("MEMPAR_LOG", "verbose")]);
    assert_eq!(out.status.code(), Some(2), "bad MEMPAR_LOG must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("MEMPAR_LOG expects quiet|info|debug"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("usage:"), "stderr missing usage: {stderr}");
}

#[test]
fn progress_lines_appear_by_default() {
    let out = run(&["--scale", "0.02"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("[table2]"),
        "default run must print progress: {stderr}"
    );
}

#[test]
fn quiet_flag_suppresses_progress() {
    for args in [
        &["--scale", "0.02", "--quiet"][..],
        &["--scale", "0.02", "-q"][..],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(0));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.is_empty(),
            "args {args:?}: quiet run must not write stderr: {stderr}"
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("Table 2"),
            "quiet only silences stderr, not results"
        );
    }
}

#[test]
fn mempar_log_env_sets_level_and_flag_wins() {
    let out = run_env(&["--scale", "0.02"], &[("MEMPAR_LOG", "QUIET")]);
    assert_eq!(out.status.code(), Some(0));
    assert!(
        out.stderr.is_empty(),
        "MEMPAR_LOG=QUIET (case-insensitive) must silence progress: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --quiet wins over MEMPAR_LOG=debug (flags are parsed after env).
    let out = run_env(&["--scale", "0.02", "-q"], &[("MEMPAR_LOG", "debug")]);
    assert_eq!(out.status.code(), Some(0));
    assert!(
        out.stderr.is_empty(),
        "-q must override MEMPAR_LOG=debug: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
