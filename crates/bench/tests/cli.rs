//! Error-path tests for the shared `parse_args` CLI, driven through a
//! real binary so the exit status and stderr contract is what users see.
//!
//! All harness binaries share `mempar_bench::parse_args`, so one binary
//! (`table2`) stands in for all of them.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_table2"))
        .args(args)
        .output()
        .expect("spawn table2")
}

fn assert_usage_exit(args: &[&str], needle: &str) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "args {args:?}: expected exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "args {args:?}: stderr missing {needle:?}:\n{stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "args {args:?}: stderr missing usage string:\n{stderr}"
    );
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    assert_usage_exit(&["--bogus"], "unknown flag --bogus");
}

#[test]
fn malformed_threads_exits_2_with_usage() {
    assert_usage_exit(&["--threads", "many"], "--threads expects an integer");
}

#[test]
fn zero_scale_exits_2_with_usage() {
    assert_usage_exit(&["--scale", "0"], "--scale expects a positive float");
    assert_usage_exit(&["--scale", "-1.5"], "--scale expects a positive float");
    assert_usage_exit(&["--scale", "nan"], "--scale expects a positive float");
}

#[test]
fn missing_value_exits_2_with_usage() {
    assert_usage_exit(&["--scale"], "missing value for --scale");
}

#[test]
fn unknown_app_exits_2_with_usage() {
    assert_usage_exit(&["--apps", "NotAnApp"], "unknown app NotAnApp");
}

#[test]
fn help_exits_0_and_prints_usage_to_stdout() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}
