//! Quick engine-throughput probe: ops/sec for the tree-walking
//! interpreter vs the bytecode VM on each workload, without criterion's
//! statistics overhead. Used to guide VM optimization; the pinned
//! numbers live in `benches/engine.rs` and `BENCH_sim.json`.

use std::time::Instant;

use mempar_ir::{BytecodeProgram, DynOp, Interp, OpKind, SrcList, Vm};
use mempar_workloads::App;

/// Minimal op pump: measures the per-call floor of the `next_op`
/// protocol itself (call + 40-byte `Option<DynOp>` move + drain loop).
struct Pump {
    n: u64,
}

impl Pump {
    #[inline(never)]
    fn next(&mut self) -> Option<DynOp> {
        if self.n == 0 {
            return None;
        }
        self.n -= 1;
        let mut srcs = SrcList::new();
        srcs.push((self.n as u32) | 1);
        Some(DynOp {
            kind: OpKind::Load { addr: self.n * 8 },
            srcs,
            dst: Some(self.n as u32),
        })
    }
}

fn main() {
    {
        let reps = 20_000_000u64;
        let t = Instant::now();
        let mut pump = Pump { n: reps };
        let mut loads = 0u64;
        while let Some(op) = pump.next() {
            if matches!(op.kind, OpKind::Load { .. }) {
                loads += 1;
            }
        }
        assert_eq!(loads, reps);
        println!(
            "protocol floor: {:.2} ns/op",
            t.elapsed().as_secs_f64() * 1e9 / reps as f64
        );
    }
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>8}",
        "app", "ops", "tw ns/op", "vm ns/op", "speedup"
    );
    for app in App::all() {
        let w = app.build(scale);
        let code = BytecodeProgram::compile(&w.program);
        // Warm + count.
        let mut ops = 0u64;
        {
            let mut mem = w.memory(1);
            let mut vm = Vm::new(&code, 0, 1);
            while vm.next_op(&mut mem).is_some() {
                ops += 1;
            }
        }
        let reps = (2_000_000 / ops.max(1)).clamp(1, 50) as u32;
        let tw = {
            let t = Instant::now();
            for _ in 0..reps {
                let mut mem = w.memory(1);
                let mut it = Interp::new(&w.program, 0, 1);
                while it.next_op(&mut mem).is_some() {}
            }
            t.elapsed().as_secs_f64() / reps as f64
        };
        let vm = {
            let t = Instant::now();
            for _ in 0..reps {
                let mut mem = w.memory(1);
                let mut vm = Vm::new(&code, 0, 1);
                while vm.next_op(&mut mem).is_some() {}
            }
            t.elapsed().as_secs_f64() / reps as f64
        };
        println!(
            "{:<12} {:>12} {:>10.2} {:>10.2} {:>7.2}x",
            app.name(),
            ops,
            tw * 1e9 / ops as f64,
            vm * 1e9 / ops as f64,
            tw / vm
        );
    }
}
