//! Criterion benchmarks: scaled-down versions of every paper experiment,
//! one group per table/figure id, so `cargo bench` regenerates the whole
//! evaluation in miniature. The harness binaries produce the full-size
//! tables; these benches track the same code paths' performance and
//! assert the headline directions.

use criterion::{criterion_group, criterion_main, Criterion};
use mempar::{run_pair, MachineConfig};
use mempar_sim::{run_program_with, SimOptions, Stepper};
use mempar_workloads::App;

/// Tiny scale so the whole suite completes in minutes.
const SCALE: f64 = 0.03;

fn bench_latbench_sec51(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec5.1-latbench");
    g.sample_size(10);
    let w = App::Latbench.build(SCALE);
    let cfg = MachineConfig::base_simulated(1, 64 * 1024);
    g.bench_function("base+clustered", |b| {
        b.iter(|| {
            let pair = run_pair(&w, &cfg);
            assert!(
                pair.clustered.cycles < pair.base.cycles,
                "clustering must win on Latbench"
            );
            pair.base.cycles + pair.clustered.cycles
        })
    });
    g.finish();
}

fn bench_fig3_uniprocessor(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3b-uniprocessor");
    g.sample_size(10);
    for app in [App::Erlebacher, App::Mst, App::Ocean] {
        let w = app.build(SCALE);
        let cfg = MachineConfig::base_simulated(1, 32 * 1024);
        g.bench_function(app.name(), |b| {
            b.iter(|| {
                let pair = run_pair(&w, &cfg);
                assert!(pair.outputs_match);
                pair.base.cycles
            })
        });
    }
    g.finish();
}

fn bench_fig3_multiprocessor(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3a-multiprocessor");
    g.sample_size(10);
    let w = App::Ocean.build(SCALE);
    let cfg = MachineConfig::base_simulated(4, 32 * 1024);
    g.bench_function("Ocean-4p", |b| {
        b.iter(|| {
            let pair = run_pair(&w, &cfg);
            assert!(pair.outputs_match);
            pair.base.cycles
        })
    });
    g.finish();
}

fn bench_table3_exemplar(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3-exemplar");
    g.sample_size(10);
    let w = App::Mst.build(SCALE);
    let cfg = MachineConfig::exemplar(1);
    g.bench_function("MST-up", |b| {
        b.iter(|| {
            let pair = run_pair(&w, &cfg);
            assert!(pair.outputs_match);
            pair.clustered.cycles
        })
    });
    g.finish();
}

fn bench_fig4_occupancy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4-mshr-occupancy");
    g.sample_size(10);
    let w = App::Lu.build(SCALE);
    let cfg = MachineConfig::base_simulated(4, 32 * 1024);
    g.bench_function("LU-4p", |b| {
        b.iter(|| {
            let pair = run_pair(&w, &cfg);
            // The Figure 4 claim: clustering raises LU's read-MSHR
            // parallelism.
            let base = pair.base.occupancy.mean_read_occupancy();
            let clust = pair.clustered.occupancy.mean_read_occupancy();
            assert!(clust >= base, "clustering must not reduce parallelism");
            (base, clust)
        })
    });
    g.finish();
}

fn bench_simulator_inner_loop(c: &mut Criterion) {
    // The simulator's per-cycle loop itself, under both drivers: the
    // event-horizon skipping default and the strict one-cycle-at-a-time
    // reference. Latbench's pointer chase is skip's best case (window-full
    // dependent misses); FFT at 4 processors is its worst (event-dense).
    // `benchsim` turns the same comparison into BENCH_sim.json; this group
    // tracks it under criterion's statistics.
    let mut g = c.benchmark_group("simulator-inner-loop");
    g.sample_size(10);
    for (label, app, mp) in [
        ("latbench-skip", App::Latbench, false),
        ("latbench-strict", App::Latbench, false),
        ("fft-mp-skip", App::Fft, true),
        ("fft-mp-strict", App::Fft, true),
    ] {
        let stepper = if label.ends_with("-skip") {
            Stepper::Skip
        } else {
            Stepper::Strict
        };
        let w = app.build(SCALE);
        let nprocs = if mp { w.mp_procs.max(1) } else { 1 };
        let cfg = MachineConfig::base_simulated(nprocs, 64 * 1024);
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut mem = w.memory(nprocs);
                run_program_with(
                    &w.program,
                    &mut mem,
                    &cfg,
                    SimOptions {
                        stepper,
                        ..SimOptions::default()
                    },
                )
                .cycles
            })
        });
    }
    g.finish();
}

fn bench_transform_throughput(c: &mut Criterion) {
    // How fast the analysis + transformation pipeline itself runs
    // (compiler-side cost).
    let mut g = c.benchmark_group("framework-throughput");
    let w = App::Erlebacher.build(SCALE);
    let cfg = MachineConfig::base_simulated(1, 32 * 1024);
    g.bench_function("cluster-erlebacher", |b| {
        b.iter(|| mempar::cluster_workload(&w, &cfg))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_latbench_sec51,
    bench_fig3_uniprocessor,
    bench_fig3_multiprocessor,
    bench_table3_exemplar,
    bench_fig4_occupancy,
    bench_simulator_inner_loop,
    bench_transform_throughput
);
criterion_main!(benches);
