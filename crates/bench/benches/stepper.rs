//! Stepper benchmarks: strict-cycle scanning vs cycle-skip horizon jumps
//! vs per-component event-driven scheduling, and the sharded event driver
//! at 1/2/4 worker threads. Two workloads bracket the design space: the
//! 16-processor FFT transpose is event-dense (sync traffic plus remote
//! misses keep most cores runnable most rounds), while uniprocessor
//! Latbench is idle-heavy (one dependent miss chain, long quiet gaps the
//! event queue can leap over). The equality cube (`tests/strict_vs_skip`,
//! `tests/stepper_cube`) already pins bit-identity, so each run here also
//! cross-checks cycles as a cheap canary.
//!
//! Headline numbers for `BENCH_sim.json` come from the `benchsim` binary
//! (min-of-N wall timing at a larger scale); this bench is for profiling
//! the drivers in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mempar_sim::{run_program_with, MachineConfig, SimOptions, Stepper};
use mempar_workloads::App;

/// Tiny scale so the whole suite completes in minutes.
const SCALE: f64 = 0.03;

/// One simulated run; returns cycles so the caller can canary-check
/// agreement across drivers.
fn simulate(app: App, nprocs: usize, opts: SimOptions) -> u64 {
    let w = app.build(SCALE);
    let cfg = MachineConfig::base_simulated(nprocs, w.l2_bytes);
    let mut mem = w.memory(nprocs);
    run_program_with(&w.program, &mut mem, &cfg, opts).cycles
}

/// Strict vs skip vs event on the two bracketing workloads.
fn bench_steppers(c: &mut Criterion) {
    for (app, nprocs) in [(App::Fft, 16), (App::Latbench, 1)] {
        let mut g = c.benchmark_group(&format!("stepper-{}-{}p", app.name(), nprocs));
        g.sample_size(10);
        let mut cycles_by_stepper = Vec::new();
        for stepper in [Stepper::Strict, Stepper::Skip, Stepper::Event] {
            let opts = SimOptions {
                stepper,
                ..SimOptions::default()
            };
            let mut cycles = 0;
            g.bench_function(stepper.to_string(), |b| {
                b.iter(|| {
                    cycles = simulate(app, nprocs, opts);
                    black_box(cycles)
                })
            });
            cycles_by_stepper.push(cycles);
        }
        assert!(
            cycles_by_stepper.windows(2).all(|w| w[0] == w[1]),
            "{}: steppers must agree on simulated cycles ({cycles_by_stepper:?})",
            app.name()
        );
        g.finish();
    }
}

/// Sharded event driver on the multiprocessor workload: 1 thread is the
/// inline (no-team) path, 2/4 add worker threads under the conservative
/// one-round window.
fn bench_shards(c: &mut Criterion) {
    let mut g = c.benchmark_group("stepper-shards-fft-16p");
    g.sample_size(10);
    let mut cycles_by_shards = Vec::new();
    for shards in [1usize, 2, 4] {
        let opts = SimOptions {
            stepper: Stepper::Event,
            shards,
            ..SimOptions::default()
        };
        let mut cycles = 0;
        g.bench_function(format!("sh{shards}"), |b| {
            b.iter(|| {
                cycles = simulate(App::Fft, 16, opts);
                black_box(cycles)
            })
        });
        cycles_by_shards.push(cycles);
    }
    assert!(
        cycles_by_shards.windows(2).all(|w| w[0] == w[1]),
        "shard counts must agree on simulated cycles ({cycles_by_shards:?})"
    );
    g.finish();
}

criterion_group!(benches, bench_steppers, bench_shards);
criterion_main!(benches);
