//! Engine benchmarks: tree-walking interpreter vs bytecode VM dispatch
//! cost, both as a raw op-stream drain (no timing model — pure front-end
//! throughput) and end-to-end through the simulator, on one regular
//! workload (Latbench) and one irregular graph workload (em3d). Also
//! hosts the tag-array probe micro-benchmark backing the cache hot-path
//! optimization (precomputed set mask, single-compare way scan).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mempar_ir::{BytecodeProgram, Interp, Vm};
use mempar_sim::{
    run_program_with, CacheParams, Engine, LineState, MachineConfig, SimOptions, TagArray,
};
use mempar_workloads::App;

/// Tiny scale so the whole suite completes in minutes.
const SCALE: f64 = 0.03;

/// Raw functional dispatch: drain the whole dynamic-op stream with no
/// timing model attached. This isolates exactly what the bytecode tier
/// optimizes — per-op production cost.
fn bench_dispatch(c: &mut Criterion) {
    for app in [App::Latbench, App::Em3d] {
        let mut g = c.benchmark_group(&format!("engine-dispatch-{}", app.name()));
        g.sample_size(10);
        let w = app.build(SCALE);
        g.bench_function("tree-walk", |b| {
            b.iter(|| {
                let mut mem = w.memory(1);
                let mut interp = Interp::new(&w.program, 0, 1);
                let mut n = 0u64;
                while interp.next_op(&mut mem).is_some() {
                    n += 1;
                }
                black_box(n)
            })
        });
        let code = BytecodeProgram::compile(&w.program);
        g.bench_function("bytecode", |b| {
            b.iter(|| {
                let mut mem = w.memory(1);
                let mut vm = Vm::new(&code, 0, 1);
                let mut n = 0u64;
                while vm.next_op(&mut mem).is_some() {
                    n += 1;
                }
                black_box(n)
            })
        });
        g.bench_function("compile", |b| {
            b.iter(|| black_box(BytecodeProgram::compile(&w.program).insn_count()))
        });
        g.finish();
    }
}

/// End-to-end simulated runs under each engine: the speedup that reaches
/// the harness binaries (compare against `BENCH_sim.json`'s
/// `engine_speedup` column).
fn bench_simulated(c: &mut Criterion) {
    for app in [App::Latbench, App::Em3d] {
        let mut g = c.benchmark_group(&format!("engine-simulated-{}", app.name()));
        g.sample_size(10);
        let w = app.build(SCALE);
        let cfg = MachineConfig::base_simulated(1, 64 * 1024);
        let mut cycles_by_engine = Vec::new();
        for engine in [Engine::Interp, Engine::Bytecode] {
            let mut cycles = 0;
            g.bench_function(engine.name(), |b| {
                b.iter(|| {
                    let mut mem = w.memory(1);
                    let opts = SimOptions {
                        engine,
                        ..SimOptions::default()
                    };
                    cycles = run_program_with(&w.program, &mut mem, &cfg, opts).cycles;
                    black_box(cycles)
                })
            });
            cycles_by_engine.push(cycles);
        }
        assert_eq!(
            cycles_by_engine[0],
            cycles_by_engine[1],
            "{}: engines must agree on simulated cycles",
            app.name()
        );
        g.finish();
    }
}

/// Tag-array probe/fill micro-benchmark: a pseudo-random (LCG) line
/// stream against a 64 KB 4-way array — the simulator's hottest loop
/// after op dispatch.
fn bench_cache_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache-probe");
    g.sample_size(10);
    let params = CacheParams {
        size_bytes: 64 * 1024,
        assoc: 4,
        line_bytes: 64,
        hit_latency: 1,
        ports: 2,
        mshrs: 10,
    };
    // Deterministic line stream, ~4x the set count so hits and misses mix.
    let lines: Vec<u64> = {
        let mut x = 0x2545f4914f6cdd1du64;
        (0..64 * 1024)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 4096
            })
            .collect()
    };
    g.bench_function("probe+fill", |b| {
        b.iter(|| {
            let mut tags = TagArray::new(&params);
            let mut hits = 0u64;
            for &line in &lines {
                match tags.probe(line) {
                    LineState::Invalid => {
                        tags.fill(line, LineState::Shared);
                    }
                    _ => hits += 1,
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("peek-hot", |b| {
        let mut tags = TagArray::new(&params);
        for line in 0..1024u64 {
            tags.fill(line, LineState::Shared);
        }
        b.iter(|| {
            let mut present = 0u64;
            for &line in &lines {
                if tags.peek(line % 1024) != LineState::Invalid {
                    present += 1;
                }
            }
            black_box(present)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch, bench_simulated, bench_cache_probe);
criterion_main!(benches);
