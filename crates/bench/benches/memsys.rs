//! Memory-system hot-path micro-benchmarks: the directory state machine,
//! the MSHR file, and the interconnect, each in isolation. The headline
//! end-to-end numbers live in `benchsim` (BENCH_sim.json); these groups
//! exist so a regression in one data structure is visible without
//! re-running whole workloads, and so data-structure swaps (hash map →
//! open addressing, linear scan → free-list index) can be justified with
//! before/after numbers on exactly the operation mix the simulator
//! issues.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mempar_sim::{
    bank_of, CohTxn, CoherenceProtocol, Directory, Interleave, MemParams, MemoryBanks, Mesh,
    MshrFile, MshrOutcome, NetParams,
};

/// Lines in the benchmark working set. Large enough that a hash-map
/// directory pays real hashing/probing costs, small enough to stay
/// cache-resident like the simulator's steady state.
const LINES: u64 = 4096;

/// Directory traffic shaped like a multiprocessor run: rotating readers
/// pull each line shared, then a writer invalidates them (the
/// invalidation-list path), then the owner is evicted.
fn bench_directory(c: &mut Criterion) {
    let mut g = c.benchmark_group("directory");
    g.sample_size(10);

    g.bench_function("read-share", |b| {
        let mut d = Directory::new();
        let mut txn = CohTxn::default();
        b.iter(|| {
            for line in 0..LINES {
                for p in 0..4usize {
                    txn.reset();
                    d.read_miss(line, (line as usize + p) % 16, &mut txn);
                    black_box(&txn);
                }
            }
        })
    });

    g.bench_function("write-invalidate", |b| {
        let mut d = Directory::new();
        let mut txn = CohTxn::default();
        b.iter(|| {
            for line in 0..LINES {
                for p in 0..4usize {
                    txn.reset();
                    d.read_miss(line, (line as usize + p) % 16, &mut txn);
                }
                txn.reset();
                d.write_miss(line, line as usize % 16, &mut txn);
                black_box(&txn);
            }
        })
    });

    g.bench_function("upgrade-churn", |b| {
        let mut d = Directory::new();
        let mut txn = CohTxn::default();
        b.iter(|| {
            for line in 0..LINES {
                txn.reset();
                d.read_miss(line, 0, &mut txn);
                txn.reset();
                d.write_miss(line, 0, &mut txn);
                black_box(&txn);
                d.evict(line, 0);
            }
        })
    });
    g.finish();
}

/// MSHR traffic shaped like the L2 path: allocate up to capacity,
/// coalesce follow-on accesses, set fill times, release at fill. The
/// `occupancy` case is the per-cycle sampling call (`MemSystem::tick`
/// issues one per processor per cycle — by far the most frequent MSHR
/// operation).
fn bench_mshr(c: &mut Criterion) {
    let mut g = c.benchmark_group("mshr");
    g.sample_size(10);
    const CAP: usize = 10;

    g.bench_function("alloc-coalesce-release", |b| {
        let mut m = MshrFile::new(CAP);
        b.iter(|| {
            for round in 0..1024u64 {
                let base = round * CAP as u64;
                for i in 0..CAP as u64 {
                    assert_eq!(m.register(base + i, false), MshrOutcome::Allocated);
                    m.set_fill_time(base + i, round + 100);
                }
                for i in 0..CAP as u64 {
                    black_box(m.register(base + i, i % 2 == 0));
                }
                for i in 0..CAP as u64 {
                    m.release(base + i);
                }
            }
        })
    });

    g.bench_function("occupancy-sample", |b| {
        let mut m = MshrFile::new(CAP);
        for i in 0..CAP as u64 {
            m.register(i, i % 3 == 0);
        }
        b.iter(|| {
            for _ in 0..4096 {
                black_box(m.occupancy());
            }
        })
    });

    g.bench_function("release-heavy", |b| {
        let mut m = MshrFile::new(CAP);
        b.iter(|| {
            for round in 0..1024u64 {
                let base = round * CAP as u64;
                for i in 0..CAP as u64 {
                    m.register(base + i, false);
                }
                // Release in reverse order: the worst case for a scan-
                // based file, the same cost as any other for an indexed
                // one.
                for i in (0..CAP as u64).rev() {
                    m.release(base + i);
                }
            }
        })
    });
    g.finish();
}

/// Interconnect transfers shaped like miss traffic on the 4x4 mesh:
/// request legs (8 bytes) out, line transfers (72 bytes) back, across a
/// spread of node pairs, plus the bank-selection hash.
fn bench_interconnect(c: &mut Criterion) {
    let mut g = c.benchmark_group("interconnect");
    g.sample_size(10);
    let net = NetParams {
        cycle_ratio: 3,
        flit_bytes: 8,
        hop_cycles: 2,
        ni_cycles: 8,
    };

    g.bench_function("mesh-transfer", |b| {
        let mut mesh = Mesh::new(4, &net);
        b.iter(|| {
            let mut t = 0u64;
            for i in 0..4096u64 {
                let from = (i % 16) as usize;
                let to = ((i * 7 + 3) % 16) as usize;
                t = black_box(mesh.send(from, to, 72, t / 2));
            }
            t
        })
    });

    g.bench_function("bank-access", |b| {
        let mp = MemParams {
            banks: 4,
            bank_cycles: 20,
            interleave: Interleave::Permutation,
        };
        let mut banks = MemoryBanks::new(&mp);
        b.iter(|| {
            let mut t = 0u64;
            for line in 0..4096u64 {
                t = black_box(banks.access(line * 3, t / 4));
            }
            t
        })
    });

    g.bench_function("bank-of", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for line in 0..65536u64 {
                acc += bank_of(line, 8, Interleave::Permutation);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(memsys, bench_directory, bench_mshr, bench_interconnect);
criterion_main!(memsys);
