//! Plain-text report formatting for the benchmark harness.

use crate::breakdown::Breakdown;
use crate::mshr::MshrOccupancy;

/// One row of a generic report table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (leftmost column).
    pub label: String,
    /// Cell values, matching the header passed to [`format_rows`].
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from a label and preformatted cells.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Self {
        Row {
            label: label.into(),
            cells,
        }
    }
}

/// Formats a simple aligned table with a header.
pub fn format_rows(title: &str, header: &[&str], rows: &[Row]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    let mut label_w = 0usize;
    for r in rows {
        label_w = label_w.max(r.label.len());
        for (i, c) in r.cells.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:label_w$}", ""));
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!("  {h:>w$}"));
    }
    out.push('\n');
    let total_w = label_w + widths.iter().map(|w| w + 2).sum::<usize>();
    out.push_str(&"-".repeat(total_w));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<label_w$}", r.label));
        for (i, w) in widths.iter().enumerate() {
            let cell = r.cells.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!("  {cell:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// Formats normalized execution-time breakdowns in the style of Figure 3:
/// each entry shows the stacked components as a percentage of the *base*
/// run's total.
///
/// `entries` are `(label, base, clustered)` triples.
pub fn format_breakdown_table(title: &str, entries: &[(String, Breakdown, Breakdown)]) -> String {
    let header = ["total%", "Data", "Sync", "CPU", "Instr"];
    let mut rows = Vec::new();
    for (label, base, clust) in entries {
        for (tag, b) in [("base", base), ("clust", clust)] {
            let denom = base.total().max(1e-12) / 100.0;
            rows.push(Row::new(
                format!("{label}/{tag}"),
                vec![
                    format!("{:6.1}", b.normalized_to(base)),
                    format!("{:6.1}", b.data / denom),
                    format!("{:6.1}", b.sync / denom),
                    format!("{:6.1}", b.cpu() / denom),
                    format!("{:6.1}", b.instr / denom),
                ],
            ));
        }
        rows.push(Row::new(
            format!("{label}/reduction"),
            vec![format!("{:6.1}", clust.percent_reduction_from(base))],
        ));
    }
    format_rows(title, &header, &rows)
}

/// Formats Figure 4-style occupancy curves: fraction of time at least N
/// MSHRs are occupied, for each labeled histogram.
pub fn format_occupancy_curves(
    title: &str,
    entries: &[(String, MshrOccupancy)],
    reads: bool,
) -> String {
    let cap = entries.first().map(|(_, m)| m.capacity()).unwrap_or(0);
    let header: Vec<String> = (0..=cap).map(|n| format!(">={n}")).collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Row> = entries
        .iter()
        .map(|(label, m)| {
            let curve = if reads {
                m.read_curve()
            } else {
                m.total_curve()
            };
            Row::new(
                label.clone(),
                curve.iter().map(|f| format!("{f:5.3}")).collect(),
            )
        })
        .collect();
    format_rows(title, &header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_align() {
        let t = format_rows(
            "T",
            &["a", "bb"],
            &[
                Row::new("x", vec!["1".into(), "2".into()]),
                Row::new("longer", vec!["10".into(), "20".into()]),
            ],
        );
        assert!(t.contains("T\n"));
        assert!(t.lines().count() >= 4);
        // Header and rows have consistent column counts.
        assert!(t.contains("longer"));
    }

    #[test]
    fn breakdown_table_contains_reduction() {
        let base = Breakdown {
            busy: 50.0,
            cpu_stall: 0.0,
            data: 50.0,
            sync: 0.0,
            instr: 0.0,
        };
        let clust = Breakdown {
            busy: 50.0,
            cpu_stall: 0.0,
            data: 25.0,
            sync: 0.0,
            instr: 0.0,
        };
        let t = format_breakdown_table("fig", &[("app".into(), base, clust)]);
        assert!(t.contains("app/base"));
        assert!(t.contains("app/clust"));
        assert!(t.contains("25.0"), "{t}");
    }

    #[test]
    fn occupancy_table_runs() {
        let mut m = MshrOccupancy::new(3);
        m.sample(1, 2);
        m.sample(3, 3);
        let t = format_occupancy_curves("f4", &[("lu".into(), m)], true);
        assert!(t.contains(">=3"));
        assert!(t.contains("lu"));
    }
}
