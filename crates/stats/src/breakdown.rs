//! Execution-time breakdown with the paper's retire-based attribution.

use std::ops::{Add, AddAssign};

/// The class a stalled cycle fraction is attributed to, determined by the
/// first instruction that could not retire that cycle (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallClass {
    /// Functional-unit or dependence stall (counted into CPU time).
    Cpu,
    /// A data read miss (or, rarely, a full write buffer).
    DataMemory,
    /// Barrier or flag synchronization.
    Sync,
    /// Empty window / fetch starvation.
    Instruction,
}

/// Execution time categorized as in Figure 3.
///
/// All fields are in cycles (fractional: each cycle contributes `r/R` busy
/// time for `r` of `R` possible retires, with the remainder attributed to
/// a single stall class).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Useful-retirement (busy) time.
    pub busy: f64,
    /// CPU-side stalls (functional units, dependences).
    pub cpu_stall: f64,
    /// Data memory stalls (dominated by L2 read misses).
    pub data: f64,
    /// Synchronization stalls.
    pub sync: f64,
    /// Instruction-supply stalls.
    pub instr: f64,
}

impl Breakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` cycles of stall of the given class.
    pub fn add_stall(&mut self, class: StallClass, amount: f64) {
        match class {
            StallClass::Cpu => self.cpu_stall += amount,
            StallClass::DataMemory => self.data += amount,
            StallClass::Sync => self.sync += amount,
            StallClass::Instruction => self.instr += amount,
        }
    }

    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.busy + self.cpu_stall + self.data + self.sync + self.instr
    }

    /// The paper's "CPU" component: busy plus functional-unit stalls.
    pub fn cpu(&self) -> f64 {
        self.busy + self.cpu_stall
    }

    /// Percentage of `base`'s total this breakdown represents
    /// (the normalized height of a Figure 3 bar).
    pub fn normalized_to(&self, base: &Breakdown) -> f64 {
        if base.total() == 0.0 {
            0.0
        } else {
            100.0 * self.total() / base.total()
        }
    }

    /// Percent execution-time reduction relative to `base`
    /// (positive = faster, as reported in Table 3).
    pub fn percent_reduction_from(&self, base: &Breakdown) -> f64 {
        if base.total() == 0.0 {
            0.0
        } else {
            100.0 * (base.total() - self.total()) / base.total()
        }
    }

    /// Scales every component (e.g. cycles → nanoseconds).
    pub fn scaled(&self, k: f64) -> Breakdown {
        Breakdown {
            busy: self.busy * k,
            cpu_stall: self.cpu_stall * k,
            data: self.data * k,
            sync: self.sync * k,
            instr: self.instr * k,
        }
    }
}

impl Add for Breakdown {
    type Output = Breakdown;

    fn add(mut self, rhs: Breakdown) -> Breakdown {
        self += rhs;
        self
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        self.busy += rhs.busy;
        self.cpu_stall += rhs.cpu_stall;
        self.data += rhs.data;
        self.sync += rhs.sync;
        self.instr += rhs.instr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Breakdown {
        Breakdown {
            busy: 50.0,
            cpu_stall: 10.0,
            data: 30.0,
            sync: 5.0,
            instr: 5.0,
        }
    }

    #[test]
    fn totals_and_cpu() {
        let b = sample();
        assert_eq!(b.total(), 100.0);
        assert_eq!(b.cpu(), 60.0);
    }

    #[test]
    fn add_stall_routes_by_class() {
        let mut b = Breakdown::new();
        b.add_stall(StallClass::DataMemory, 2.0);
        b.add_stall(StallClass::Sync, 1.0);
        b.add_stall(StallClass::Instruction, 0.5);
        b.add_stall(StallClass::Cpu, 0.25);
        assert_eq!(b.data, 2.0);
        assert_eq!(b.sync, 1.0);
        assert_eq!(b.instr, 0.5);
        assert_eq!(b.cpu_stall, 0.25);
    }

    #[test]
    fn normalization() {
        let base = sample();
        let clust = Breakdown {
            busy: 50.0,
            cpu_stall: 10.0,
            data: 10.0,
            sync: 5.0,
            instr: 5.0,
        };
        assert_eq!(clust.normalized_to(&base), 80.0);
        assert_eq!(clust.percent_reduction_from(&base), 20.0);
    }

    #[test]
    fn degenerate_base_is_safe() {
        let zero = Breakdown::new();
        assert_eq!(sample().normalized_to(&zero), 0.0);
        assert_eq!(sample().percent_reduction_from(&zero), 0.0);
    }

    #[test]
    fn add_and_scale() {
        let b = sample() + sample();
        assert_eq!(b.total(), 200.0);
        let ns = b.scaled(2.0);
        assert_eq!(ns.total(), 400.0);
    }
}
