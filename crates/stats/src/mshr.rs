//! MSHR occupancy, miss counters, latency and utilization statistics.

/// Per-cycle histogram of occupied MSHRs — the measurement behind
/// Figure 4 of the paper.
///
/// `sample` is called once per simulated cycle with the number of MSHRs
/// holding read misses and the total number occupied.
#[derive(Debug, Clone, PartialEq)]
pub struct MshrOccupancy {
    capacity: usize,
    cycles: u64,
    /// `read_hist[n]` = cycles with exactly `n` read-miss MSHRs occupied.
    read_hist: Vec<u64>,
    /// `total_hist[n]` = cycles with exactly `n` MSHRs occupied overall.
    total_hist: Vec<u64>,
}

impl MshrOccupancy {
    /// New histogram for a cache with `capacity` MSHRs.
    pub fn new(capacity: usize) -> Self {
        MshrOccupancy {
            capacity,
            cycles: 0,
            read_hist: vec![0; capacity + 1],
            total_hist: vec![0; capacity + 1],
        }
    }

    /// MSHR capacity this histogram was created for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one cycle's occupancy.
    ///
    /// # Panics
    /// Panics (debug) when counts exceed capacity — that would mean the
    /// cache model violated its own MSHR limit.
    pub fn sample(&mut self, reads: usize, total: usize) {
        self.sample_n(reads, total, 1);
    }

    /// Records `cycles` consecutive cycles at the same occupancy — the
    /// bulk form used when the simulator skips over event-free spans.
    /// Exactly equivalent to calling [`MshrOccupancy::sample`] `cycles`
    /// times (all counters are integers).
    pub fn sample_n(&mut self, reads: usize, total: usize, cycles: u64) {
        debug_assert!(reads <= total && total <= self.capacity);
        self.cycles += cycles;
        self.read_hist[reads.min(self.capacity)] += cycles;
        self.total_hist[total.min(self.capacity)] += cycles;
    }

    /// Merges another histogram (e.g. from another processor's L2).
    pub fn merge(&mut self, other: &MshrOccupancy) {
        assert_eq!(self.capacity, other.capacity, "MSHR capacity mismatch");
        self.cycles += other.cycles;
        for i in 0..=self.capacity {
            self.read_hist[i] += other.read_hist[i];
            self.total_hist[i] += other.total_hist[i];
        }
    }

    /// Cycles sampled.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Fraction of time at least `n` read-miss MSHRs were occupied
    /// (Figure 4(a)'s Y axis for X = `n`).
    pub fn read_at_least(&self, n: usize) -> f64 {
        self.at_least(&self.read_hist, n)
    }

    /// Fraction of time at least `n` MSHRs (reads + writes) were occupied
    /// (Figure 4(b)).
    pub fn total_at_least(&self, n: usize) -> f64 {
        self.at_least(&self.total_hist, n)
    }

    fn at_least(&self, hist: &[u64], n: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let c: u64 = hist[n.min(self.capacity)..].iter().sum();
        c as f64 / self.cycles as f64
    }

    /// Mean number of read-miss MSHRs occupied (average read memory
    /// parallelism).
    pub fn mean_read_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .read_hist
            .iter()
            .enumerate()
            .map(|(n, &c)| n as u64 * c)
            .sum();
        sum as f64 / self.cycles as f64
    }

    /// The full "fraction of time ≥ N" curve for reads, N = 0..=capacity.
    pub fn read_curve(&self) -> Vec<f64> {
        (0..=self.capacity).map(|n| self.read_at_least(n)).collect()
    }

    /// The full "fraction of time ≥ N" curve for reads + writes.
    pub fn total_curve(&self) -> Vec<f64> {
        (0..=self.capacity)
            .map(|n| self.total_at_least(n))
            .collect()
    }

    /// The raw read histogram: index `n` = cycles with exactly `n`
    /// read-miss MSHRs occupied.
    pub fn read_histogram(&self) -> &[u64] {
        &self.read_hist
    }

    /// The raw total histogram: index `n` = cycles with exactly `n` MSHRs
    /// occupied overall.
    pub fn total_histogram(&self) -> &[u64] {
        &self.total_hist
    }

    /// Compact single-line JSON serialization, suitable for embedding in
    /// `BENCH_sim.json` records.
    pub fn to_json(&self) -> String {
        let join = |h: &[u64]| h.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        format!(
            "{{\"capacity\": {}, \"cycles\": {}, \"mean_read_occupancy\": {:.6}, \"read_hist\": [{}], \"total_hist\": [{}]}}",
            self.capacity,
            self.cycles,
            self.mean_read_occupancy(),
            join(&self.read_hist),
            join(&self.total_hist)
        )
    }
}

/// Miss/traffic counters from the memory hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Demand loads issued to the hierarchy.
    pub loads: u64,
    /// Demand stores issued to the hierarchy.
    pub stores: u64,
    /// L1 misses (loads + stores, after coalescing).
    pub l1_misses: u64,
    /// L2 misses (i.e. external misses).
    pub l2_misses: u64,
    /// L2 *read* misses (the paper's focus).
    pub l2_read_misses: u64,
    /// Misses satisfied by local memory.
    pub local_misses: u64,
    /// Misses satisfied by a remote home memory.
    pub remote_misses: u64,
    /// Misses satisfied cache-to-cache.
    pub cache_to_cache: u64,
    /// Coalesced (merged into an outstanding MSHR) accesses.
    pub coalesced: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Update messages received (write-update protocols: the written
    /// word delivered to a still-valid remote copy).
    pub updates: u64,
    /// Ownership upgrades issued (writes that needed permission but no
    /// data transfer).
    pub upgrades: u64,
    /// Writebacks of dirty lines.
    pub writebacks: u64,
    /// Software prefetches issued to the hierarchy.
    pub prefetches: u64,
}

impl MemCounters {
    /// Element-wise sum.
    pub fn merge(&mut self, o: &MemCounters) {
        self.loads += o.loads;
        self.stores += o.stores;
        self.l1_misses += o.l1_misses;
        self.l2_misses += o.l2_misses;
        self.l2_read_misses += o.l2_read_misses;
        self.local_misses += o.local_misses;
        self.remote_misses += o.remote_misses;
        self.cache_to_cache += o.cache_to_cache;
        self.coalesced += o.coalesced;
        self.invalidations += o.invalidations;
        self.updates += o.updates;
        self.upgrades += o.upgrades;
        self.writebacks += o.writebacks;
        self.prefetches += o.prefetches;
    }
}

/// Accumulates a latency distribution (e.g. L2 read-miss total latency,
/// from address generation to completion, as in Section 5.1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of latencies (cycles).
    pub sum: f64,
    /// Maximum observed (cycles).
    pub max: f64,
}

impl LatencyStat {
    /// Records one latency sample.
    pub fn record(&mut self, cycles: f64) {
        self.count += 1;
        self.sum += cycles;
        if cycles > self.max {
            self.max = cycles;
        }
    }

    /// Mean latency in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another distribution.
    pub fn merge(&mut self, o: &LatencyStat) {
        self.count += o.count;
        self.sum += o.sum;
        if o.max > self.max {
            self.max = o.max;
        }
    }
}

/// Busy-fraction tracker for a shared resource (bus, memory bank).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Utilization {
    /// Cycles the resource was busy.
    pub busy: u64,
    /// Total observed cycles.
    pub total: u64,
}

impl Utilization {
    /// Records `busy` out of `total` additional cycles.
    pub fn record(&mut self, busy: u64, total: u64) {
        debug_assert!(busy <= total);
        self.busy += busy;
        self.total += total;
    }

    /// The utilization in [0, 1].
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.busy as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_curves() {
        let mut m = MshrOccupancy::new(4);
        m.sample(0, 0);
        m.sample(2, 3);
        m.sample(4, 4);
        m.sample(1, 1);
        assert_eq!(m.cycles(), 4);
        assert_eq!(m.read_at_least(0), 1.0);
        assert_eq!(m.read_at_least(1), 0.75);
        assert_eq!(m.read_at_least(2), 0.5);
        assert_eq!(m.read_at_least(4), 0.25);
        assert_eq!(m.total_at_least(3), 0.5);
        assert!((m.mean_read_occupancy() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn occupancy_merge() {
        let mut a = MshrOccupancy::new(2);
        a.sample(1, 1);
        let mut b = MshrOccupancy::new(2);
        b.sample(2, 2);
        a.merge(&b);
        assert_eq!(a.cycles(), 2);
        assert_eq!(a.read_at_least(1), 1.0);
        assert_eq!(a.read_at_least(2), 0.5);
    }

    #[test]
    fn occupancy_curve_is_monotone() {
        let mut m = MshrOccupancy::new(8);
        for i in 0..100u64 {
            let r = (i % 9) as usize;
            m.sample(r, r);
        }
        let curve = m.read_curve();
        for w in curve.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(curve[0], 1.0);
    }

    #[test]
    fn occupancy_json_round_trips_fields() {
        let mut m = MshrOccupancy::new(2);
        m.sample(1, 2);
        m.sample(1, 1);
        let json = m.to_json();
        assert!(json.contains("\"capacity\": 2"), "{json}");
        assert!(json.contains("\"cycles\": 2"));
        assert!(json.contains("\"read_hist\": [0, 2, 0]"));
        assert!(json.contains("\"total_hist\": [0, 1, 1]"));
        assert_eq!(m.read_histogram(), &[0, 2, 0]);
        assert_eq!(m.total_histogram(), &[0, 1, 1]);
    }

    #[test]
    fn latency_stat() {
        let mut l = LatencyStat::default();
        l.record(100.0);
        l.record(300.0);
        assert_eq!(l.mean(), 200.0);
        assert_eq!(l.max, 300.0);
        let mut l2 = LatencyStat::default();
        l2.record(500.0);
        l.merge(&l2);
        assert_eq!(l.count, 3);
        assert_eq!(l.max, 500.0);
        assert_eq!(LatencyStat::default().mean(), 0.0);
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::default();
        u.record(25, 100);
        u.record(25, 100);
        assert_eq!(u.fraction(), 0.25);
        assert_eq!(Utilization::default().fraction(), 0.0);
    }

    #[test]
    fn counters_merge() {
        let mut a = MemCounters {
            loads: 1,
            l2_misses: 2,
            ..Default::default()
        };
        let b = MemCounters {
            loads: 3,
            cache_to_cache: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.loads, 4);
        assert_eq!(a.l2_misses, 2);
        assert_eq!(a.cache_to_cache, 1);
    }
}
