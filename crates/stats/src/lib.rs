//! Statistics collected by the `mempar` simulator and reported by the
//! benchmark harness.
//!
//! The central types mirror the measurements in the paper:
//!
//! * [`Breakdown`] — execution time split into busy/CPU, data-memory stall,
//!   synchronization stall and instruction stall, following the retire-based
//!   attribution convention of Section 5.2.
//! * [`MshrOccupancy`] — per-cycle histograms of occupied L2 MSHRs (read
//!   and total), the measurement behind Figure 4.
//! * [`MemCounters`] / [`LatencyStat`] — miss counts by level and
//!   latency distributions (Latbench reports).
//! * [`Utilization`] — busy-fraction tracking for buses and memory banks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod breakdown;
mod mshr;
mod plot;
mod table;

pub use breakdown::{Breakdown, StallClass};
pub use mshr::{LatencyStat, MemCounters, MshrOccupancy, Utilization};
pub use plot::{render_breakdown_bars, render_occupancy_chart};
pub use table::{format_breakdown_table, format_occupancy_curves, format_rows, Row};
