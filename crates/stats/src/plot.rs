//! Terminal rendering of the paper's figures: horizontal-bar breakdowns
//! (Figure 3) and occupancy step-curves (Figure 4).

use crate::breakdown::Breakdown;
use crate::mshr::MshrOccupancy;

/// Renders a Figure 3-style stacked horizontal bar per run, normalized to
/// the paired base run's total. Each cell of the bar is one category:
/// `D` data stall, `S` sync, `C` CPU (busy + FU stall), `I` instruction.
pub fn render_breakdown_bars(
    title: &str,
    entries: &[(String, Breakdown, Breakdown)],
    width: usize,
) -> String {
    let width = width.max(20);
    let mut out = format!("{title}\n");
    out.push_str("legend: D=data stall, S=sync, C=CPU, I=instruction\n");
    let label_w = entries
        .iter()
        .map(|(n, _, _)| n.len() + 6)
        .max()
        .unwrap_or(8);
    for (name, base, clust) in entries {
        let denom = base.total().max(1e-12);
        for (tag, b) in [("base", base), ("clust", clust)] {
            let mut bar = String::new();
            for (ch, amount) in [('D', b.data), ('S', b.sync), ('C', b.cpu()), ('I', b.instr)] {
                let cells = ((amount / denom) * width as f64).round() as usize;
                bar.extend(std::iter::repeat_n(ch, cells));
            }
            let label = format!("{name}/{tag}");
            out.push_str(&format!(
                "{label:<label_w$} |{bar:<width$}| {:5.1}%\n",
                100.0 * b.total() / denom
            ));
        }
    }
    out
}

/// Renders Figure 4-style occupancy curves as rows of column heights:
/// for each N (columns), the fraction of time at least N MSHRs were
/// occupied, shown as a height-10 column chart per labeled run.
pub fn render_occupancy_chart(
    title: &str,
    entries: &[(String, MshrOccupancy)],
    reads: bool,
) -> String {
    let mut out = format!("{title}\n");
    for (label, occ) in entries {
        let curve = if reads {
            occ.read_curve()
        } else {
            occ.total_curve()
        };
        out.push_str(&format!("{label}:\n"));
        for level in (1..=10).rev() {
            let threshold = level as f64 / 10.0;
            let row: String = curve
                .iter()
                .map(|&f| if f + 1e-12 >= threshold { " ##" } else { "   " })
                .collect();
            out.push_str(&format!("  {:>3}% |{row}\n", level * 10));
        }
        let axis: String = (0..curve.len()).map(|n| format!("{n:>3}")).collect();
        out.push_str(&format!(
            "       +{}\n        {axis}  (>= N MSHRs)\n",
            "-".repeat(curve.len() * 3)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_with_components() {
        let base = Breakdown {
            busy: 25.0,
            cpu_stall: 0.0,
            data: 75.0,
            sync: 0.0,
            instr: 0.0,
        };
        let clust = Breakdown {
            busy: 25.0,
            cpu_stall: 0.0,
            data: 25.0,
            sync: 0.0,
            instr: 0.0,
        };
        let s = render_breakdown_bars("t", &[("app".into(), base, clust)], 40);
        // base: 30 cells of D, 10 of C; clust: 10 D, 10 C.
        assert!(s.contains(&"D".repeat(30)), "{s}");
        assert!(!s.contains(&"D".repeat(31)));
        assert!(s.contains("100.0%"));
        assert!(s.contains(" 50.0%"));
    }

    #[test]
    fn bars_include_all_categories() {
        let b = Breakdown {
            busy: 25.0,
            cpu_stall: 25.0,
            data: 25.0,
            sync: 15.0,
            instr: 10.0,
        };
        let s = render_breakdown_bars("t", &[("x".into(), b, b)], 20);
        for ch in ["D", "S", "C", "I"] {
            assert!(s.contains(ch), "missing {ch} in {s}");
        }
    }

    #[test]
    fn occupancy_chart_monotone_columns() {
        let mut m = MshrOccupancy::new(4);
        for _ in 0..50 {
            m.sample(2, 2);
        }
        for _ in 0..50 {
            m.sample(0, 0);
        }
        let s = render_occupancy_chart("f", &[("run".into(), m)], true);
        // >=0 is always 1.0 (a full column); >=3 is 0 (no marks at top).
        assert!(s.contains("100% | ##"), "{s}");
        assert!(s.contains("(>= N MSHRs)"));
    }
}
