//! Observability for the `mempar` simulator: structured event tracing,
//! a metrics registry, and the miss-clustering profiler.
//!
//! The paper's whole argument is about *where* read misses land in time —
//! whether leading references cluster their misses inside one instruction
//! window or serialize them. The simulator reproduces the aggregate
//! numbers; this crate opens the box:
//!
//! * [`Tracer`] — a zero-cost-when-disabled, ring-buffered recorder of
//!   [`TraceEvent`]s (miss issue/fill, MSHR allocate/release, coalesces,
//!   stall begin/end transitions, event-horizon jumps). Recording is pure
//!   observation: an enabled tracer never changes simulated results.
//! * [`chrome_trace_json`] — exports a trace as Chrome `trace_event` JSON
//!   that loads directly in Perfetto or `chrome://tracing`.
//! * [`MetricsRegistry`] — named counters/gauges/histograms that every
//!   simulator component registers into (naming convention
//!   `sim.cache.l2.miss`, `sim.proc0.core.retired`, …), with JSON and CSV
//!   snapshot export.
//! * [`profile_misses`] — joins trace events against the leading
//!   references found by `mempar-analysis`, reporting per static
//!   reference: miss count, mean overlap (read misses outstanding at
//!   issue), serialization ratio, and achieved-vs-predicted `f/α` — a
//!   direct empirical check of the unroll-and-jam model.
//! * [`ReuseProfiler`] — a streaming, SHARDS-sampled reuse-distance
//!   profiler over the dynamic-op address stream, producing per-array
//!   measured miss probabilities per cache level ([`ReuseReport`]) and
//!   the predicted-vs-measured calibration table ([`locality_delta`])
//!   behind the harness `--locality measured` mode.
//!
//! See DESIGN.md §8 for the event taxonomy and how to read a clustering
//! profile.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod json;
mod profile;
mod registry;
mod reuse;
mod trace;

pub use chrome::{chrome_trace_json, ChromeRun};
pub use json::{escape_json, validate_json};
pub use profile::{profile_misses, RefClusterRow, RefProfile};
pub use registry::{histogram_percentiles, Metric, MetricsRegistry};
pub use reuse::{
    locality_delta, ArrayReuse, DeltaReport, DeltaRow, ReuseConfig, ReuseLevel, ReuseProfiler,
    ReuseReport, ReuseSample,
};
pub use trace::{TraceEvent, TraceEventKind, Tracer, SYSTEM_PROC};
