//! Minimal JSON utilities for the offline build (no serde): string
//! escaping for the exporters, and a strict well-formedness validator
//! used by tests and the CI smoke checks.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `s` is one well-formed JSON value (with nothing but
/// whitespace after it). Returns the byte offset of the first error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a": [1, 2.0, "x\n", true, null], "b": {"c": []}}"#,
            "  [1]  ",
        ] {
            assert!(validate_json(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "1 2",
            "{'a': 1}",
            "\"unterminated",
            "01e",
            "nul",
        ] {
            assert!(validate_json(doc).is_err(), "{doc}");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape_json(nasty));
        assert!(validate_json(&doc).is_ok(), "{doc}");
    }
}
