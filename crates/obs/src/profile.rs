//! The miss-clustering profiler: joins dynamic trace events against the
//! static leading references found by `mempar-analysis`, turning a trace
//! into a per-reference verdict on the paper's central question — did
//! the misses of this reference overlap or serialize?
//!
//! Attribution goes through the address: every [`TraceEventKind::MissIssue`]
//! carries its cache line, [`SimMem::array_of_addr`] maps the line back
//! to the array it belongs to, and each array is claimed by the first
//! leading read reference (program order) that the analysis framework
//! found for it. When several leading references share one array the
//! profile is per-array rather than per-reference — exact for every
//! workload in the catalog, and flagged here so readers of a profile
//! know what they are looking at.
//!
//! The *achieved* clustering measure is the mean number of read-miss
//! MSHRs occupied at issue (including the new miss): 1.0 means fully
//! serialized, `k` means each miss found `k - 1` partners in flight. The
//! *predicted* measure is the framework's `f` estimate divided by the
//! recurrence bound `α` (Equations 1–4 and Section 3.2.2) for the nest
//! that contains the reference.

use mempar_analysis::{analyze_inner_loop, MachineSummary, MissProfile};
use mempar_ir::{ArrayId, Program, SimMem};
use mempar_stats::{format_rows, Row};
use mempar_transform::{innermost_loops, loop_at};

use crate::json::escape_json;
use crate::trace::{TraceEvent, TraceEventKind};

/// One profiled static reference (or the `(other)` bucket for misses no
/// leading reference claims — writebacks, irregular side arrays, …).
#[derive(Debug, Clone, PartialEq)]
pub struct RefClusterRow {
    /// Array name the reference reads.
    pub array: String,
    /// Innermost-nest index (program order) the prediction came from.
    pub nest: usize,
    /// The leading reference's id inside its nest's `RefCollection`.
    pub ref_id: usize,
    /// Innermost-loop iterations per line (`L_m`).
    pub l_m: u32,
    /// Dynamic read misses attributed to the reference.
    pub misses: u64,
    /// Mean read-miss MSHRs outstanding at issue, including the new
    /// miss: 1.0 = fully serialized.
    pub mean_overlap: f64,
    /// Fraction of misses that found no other read miss in flight.
    pub serialization_ratio: f64,
    /// The framework's `f` estimate for the nest (misses overlapped per
    /// window).
    pub predicted_f: f64,
    /// The nest's recurrence bound `α` (0 when the nest has none).
    pub alpha: f64,
    /// Predicted overlap `f / max(α, 1)` — the model's expectation for
    /// `mean_overlap`.
    pub predicted_overlap: f64,
    /// `mean_overlap / predicted_overlap` (0 when nothing was predicted).
    pub achieved_ratio: f64,
}

/// A complete clustering profile for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RefProfile {
    /// Per-reference rows, nests in program order, `(other)` last.
    pub rows: Vec<RefClusterRow>,
}

impl RefProfile {
    /// Sum of attributed and unattributed read misses.
    pub fn total_misses(&self) -> u64 {
        self.rows.iter().map(|r| r.misses).sum()
    }

    /// Misses-weighted mean overlap across all rows (0 when empty).
    pub fn overall_mean_overlap(&self) -> f64 {
        let total = self.total_misses();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .rows
            .iter()
            .map(|r| r.mean_overlap * r.misses as f64)
            .sum();
        sum / total as f64
    }

    /// Renders the profile as an aligned text table.
    pub fn format_table(&self, title: &str) -> String {
        let rows: Vec<Row> = self
            .rows
            .iter()
            .map(|r| {
                Row::new(
                    &r.array,
                    vec![
                        format!("{}", r.misses),
                        format!("{:.2}", r.mean_overlap),
                        format!("{:.0}%", 100.0 * r.serialization_ratio),
                        format!("{:.2}", r.predicted_f),
                        format!("{:.2}", r.alpha),
                        format!("{:.2}", r.predicted_overlap),
                        if r.predicted_overlap > 0.0 {
                            format!("{:.2}", r.achieved_ratio)
                        } else {
                            "-".into()
                        },
                    ],
                )
            })
            .collect();
        format_rows(
            title,
            &[
                "misses", "overlap", "serial", "f", "alpha", "f/a", "ach/pred",
            ],
            &rows,
        )
    }

    /// JSON export of the rows (one object per reference).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"refs\": [\n");
        let lines: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"array\": \"{}\", \"nest\": {}, \"ref_id\": {}, \"l_m\": {}, \
                     \"misses\": {}, \"mean_overlap\": {:.4}, \"serialization_ratio\": {:.4}, \
                     \"predicted_f\": {:.4}, \"alpha\": {:.4}, \"predicted_overlap\": {:.4}, \
                     \"achieved_ratio\": {:.4}}}",
                    escape_json(&r.array),
                    r.nest,
                    r.ref_id,
                    r.l_m,
                    r.misses,
                    r.mean_overlap,
                    r.serialization_ratio,
                    r.predicted_f,
                    r.alpha,
                    r.predicted_overlap,
                    r.achieved_ratio
                )
            })
            .collect();
        s.push_str(&lines.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// A static claim: the first leading read reference per array.
#[derive(Debug, Clone)]
struct Claim {
    array: ArrayId,
    name: String,
    nest: usize,
    ref_id: usize,
    l_m: u32,
    predicted_f: f64,
    alpha: f64,
}

/// Builds the clustering profile for one run.
///
/// * `prog` — the program the trace came from (its innermost loops are
///   re-analyzed to obtain predictions);
/// * `mem` — the run's memory layout, used to map miss lines back to
///   arrays;
/// * `m` / `miss_profile` — the same machine summary and miss profile
///   the transformation driver saw, so predictions match its decisions;
/// * `events` — the trace (only `MissIssue` events are consumed);
/// * `line_shift` — log2 of the L2 line size.
pub fn profile_misses(
    prog: &Program,
    mem: &SimMem,
    m: &MachineSummary,
    miss_profile: &MissProfile,
    events: &[TraceEvent],
    line_shift: u32,
) -> RefProfile {
    // Static pass: predictions per array from each innermost nest.
    let mut claims: Vec<Claim> = Vec::new();
    for (nest_idx, path) in innermost_loops(prog).iter().enumerate() {
        let Some(lp) = loop_at(prog, path) else {
            continue;
        };
        let analysis = analyze_inner_loop(prog, &lp.body, lp.var, m, miss_profile);
        let alpha = analysis.recurrences.alpha;
        for r in analysis.refs.leading() {
            if r.is_write || claims.iter().any(|c| c.array == r.array) {
                continue;
            }
            claims.push(Claim {
                array: r.array,
                name: prog.array(r.array).name.clone(),
                nest: nest_idx,
                ref_id: r.id,
                l_m: r.l_m,
                predicted_f: analysis.f,
                alpha,
            });
        }
    }

    // Dynamic pass: fold read-miss issues into per-array accumulators.
    #[derive(Default, Clone, Copy)]
    struct Acc {
        misses: u64,
        overlap_sum: u64,
        serialized: u64,
    }
    let mut per_claim: Vec<Acc> = vec![Acc::default(); claims.len()];
    let mut other = Acc::default();
    for ev in events {
        let TraceEventKind::MissIssue {
            line,
            write: false,
            reads_outstanding,
            ..
        } = ev.kind
        else {
            continue;
        };
        let addr = line << line_shift;
        let acc = match mem
            .array_of_addr(addr)
            .and_then(|a| claims.iter().position(|c| c.array == a))
        {
            Some(i) => &mut per_claim[i],
            None => &mut other,
        };
        acc.misses += 1;
        acc.overlap_sum += u64::from(reads_outstanding);
        if reads_outstanding <= 1 {
            acc.serialized += 1;
        }
    }

    let row = |claim: Option<&Claim>, acc: &Acc| {
        let mean_overlap = if acc.misses == 0 {
            0.0
        } else {
            acc.overlap_sum as f64 / acc.misses as f64
        };
        let serialization_ratio = if acc.misses == 0 {
            0.0
        } else {
            acc.serialized as f64 / acc.misses as f64
        };
        let (predicted_f, alpha) = claim.map_or((0.0, 0.0), |c| (c.predicted_f, c.alpha));
        let predicted_overlap = predicted_f / alpha.max(1.0);
        RefClusterRow {
            array: claim.map_or("(other)".into(), |c| c.name.clone()),
            nest: claim.map_or(usize::MAX, |c| c.nest),
            ref_id: claim.map_or(usize::MAX, |c| c.ref_id),
            l_m: claim.map_or(0, |c| c.l_m),
            misses: acc.misses,
            mean_overlap,
            serialization_ratio,
            predicted_f,
            alpha,
            predicted_overlap,
            achieved_ratio: if predicted_overlap > 0.0 {
                mean_overlap / predicted_overlap
            } else {
                0.0
            },
        }
    };

    let mut rows: Vec<RefClusterRow> = claims
        .iter()
        .zip(per_claim.iter())
        .map(|(c, acc)| row(Some(c), acc))
        .collect();
    if other.misses > 0 {
        rows.push(row(None, &other));
    }
    RefProfile { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use mempar_ir::ProgramBuilder;

    /// A streaming reduction: one leading read reference over `a`.
    fn stream(n: usize) -> (Program, ArrayId) {
        let mut b = ProgramBuilder::new("stream");
        let a = b.array_f64("a", &[n]);
        let s = b.scalar_f64("sum", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, n as i64, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let acc = b.scalar(s);
            let e = b.add(acc, v);
            b.assign_scalar(s, e);
        });
        (b.finish(), a)
    }

    fn miss(mem: &SimMem, a: ArrayId, elem: u64, reads: u32) -> TraceEvent {
        TraceEvent {
            time: elem,
            proc: 0,
            kind: TraceEventKind::MissIssue {
                line: (mem.base(a) + elem * 8) >> 6,
                write: false,
                reads_outstanding: reads,
                total_outstanding: reads,
            },
        }
    }

    #[test]
    fn attributes_misses_and_joins_predictions() {
        let (prog, a) = stream(1024);
        let mem = SimMem::new(&prog, 1);
        let m = MachineSummary::base();
        let profile = MissProfile::pessimistic();
        // Three misses, overlaps 1/3/2 → mean 2.0, one serialized.
        let events = vec![
            miss(&mem, a, 0, 1),
            miss(&mem, a, 8, 3),
            miss(&mem, a, 16, 2),
        ];
        let p = profile_misses(&prog, &mem, &m, &profile, &events, 6);
        assert_eq!(p.rows.len(), 1, "one leading reference: {:?}", p.rows);
        let r = &p.rows[0];
        assert_eq!(r.array, "a");
        assert_eq!(r.misses, 3);
        assert!((r.mean_overlap - 2.0).abs() < 1e-12);
        assert!((r.serialization_ratio - 1.0 / 3.0).abs() < 1e-12);
        assert!(r.predicted_f > 0.0, "stream has a prediction");
        assert!(r.predicted_overlap > 0.0);
        assert!(r.achieved_ratio > 0.0);
        assert_eq!(p.total_misses(), 3);
        validate_json(&p.to_json()).expect("profile JSON well-formed");
        let table = p.format_table("profile");
        assert!(table.contains("ach/pred"));
    }

    #[test]
    fn unclaimed_misses_land_in_other() {
        let (prog, a) = stream(64);
        let mem = SimMem::new(&prog, 1);
        let m = MachineSummary::base();
        let profile = MissProfile::pessimistic();
        // An address far past every array maps to no array.
        let events = vec![
            miss(&mem, a, 0, 1),
            TraceEvent {
                time: 9,
                proc: 0,
                kind: TraceEventKind::MissIssue {
                    line: u64::MAX >> 8,
                    write: false,
                    reads_outstanding: 1,
                    total_outstanding: 1,
                },
            },
        ];
        let p = profile_misses(&prog, &mem, &m, &profile, &events, 6);
        assert_eq!(p.rows.len(), 2);
        let other = p.rows.last().expect("other row");
        assert_eq!(other.array, "(other)");
        assert_eq!(other.misses, 1);
        assert_eq!(other.predicted_overlap, 0.0);
    }

    #[test]
    fn write_misses_are_ignored() {
        let (prog, a) = stream(64);
        let mem = SimMem::new(&prog, 1);
        let events = vec![TraceEvent {
            time: 0,
            proc: 0,
            kind: TraceEventKind::MissIssue {
                line: mem.base(a) >> 6,
                write: true,
                reads_outstanding: 1,
                total_outstanding: 1,
            },
        }];
        let p = profile_misses(
            &prog,
            &mem,
            &MachineSummary::base(),
            &MissProfile::pessimistic(),
            &events,
            6,
        );
        assert_eq!(p.total_misses(), 0);
    }
}
