//! The structured event-tracing layer: a ring-buffered recorder that is
//! free when disabled and purely observational when enabled.

use mempar_stats::StallClass;

/// Pseudo-processor id for system-scope events (not tied to any core),
/// e.g. [`TraceEventKind::HorizonJump`].
pub const SYSTEM_PROC: u32 = u32::MAX;

/// What happened. Times and processor ids live on the enclosing
/// [`TraceEvent`]; `line` fields are cache-line numbers (byte address
/// right-shifted by the configuration's line shift).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An L2 miss left the processor for the outside world. The
    /// occupancy fields snapshot the issuing processor's L2 MSHR file
    /// *including this miss* — `reads_outstanding == 1` means the miss
    /// found no other read miss to overlap with (it is serialized).
    MissIssue {
        /// Missing line.
        line: u64,
        /// True for store misses and upgrades.
        write: bool,
        /// Read-miss MSHRs occupied at issue (including this one).
        reads_outstanding: u32,
        /// Total MSHRs occupied at issue (including this one).
        total_outstanding: u32,
    },
    /// The miss's data arrived and the line was (re)installed.
    MissFill {
        /// Filled line.
        line: u64,
    },
    /// An L2 MSHR was allocated for the line.
    MshrAlloc {
        /// Tracked line.
        line: u64,
    },
    /// The line's L2 MSHR was released (at fill time).
    MshrRelease {
        /// Released line.
        line: u64,
    },
    /// An access merged into an outstanding MSHR for the same line.
    Coalesce {
        /// Coalescing line.
        line: u64,
    },
    /// The processor entered a stall of the given class (retire-stage
    /// attribution, Section 5.2).
    StallBegin {
        /// Stall class now charged.
        class: StallClass,
    },
    /// The processor left a stall of the given class.
    StallEnd {
        /// Stall class no longer charged.
        class: StallClass,
    },
    /// The event-horizon scheduler jumped the clock over `span` provably
    /// dead cycles (recorded with proc = [`SYSTEM_PROC`]).
    HorizonJump {
        /// Skipped cycles.
        span: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event occurred at.
    pub time: u64,
    /// Processor index, or [`SYSTEM_PROC`] for system-scope events.
    pub proc: u32,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Ring-buffered event recorder.
///
/// A disabled tracer ([`Tracer::disabled`]) costs one branch per
/// *potential* recording site and allocates nothing; the simulator
/// additionally gates any event-payload computation (occupancy
/// snapshots) on [`Tracer::is_enabled`], so disabled tracing is free.
/// When the buffer is full the oldest events are overwritten and counted
/// in [`Tracer::dropped`].
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    buf: Vec<TraceEvent>,
    /// Oldest-element index once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing (the default for plain runs).
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            capacity: 0,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// An enabled tracer retaining the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            enabled: true,
            capacity,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// True when recording. Call sites use this to skip computing event
    /// payloads (e.g. occupancy snapshots) for disabled tracers.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, time: u64, proc: u32, kind: TraceEventKind) {
        if !self.enabled {
            return;
        }
        let ev = TraceEvent { time, proc, kind };
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity (0 for a disabled tracer).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut v = self.buf.clone();
        v.rotate_left(self.head);
        v
    }

    /// Consumes the tracer, returning `(events oldest-first, dropped)`.
    pub fn into_events(mut self) -> (Vec<TraceEvent>, u64) {
        self.buf.rotate_left(self.head);
        (self.buf, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(0, 0, TraceEventKind::MissFill { line: 1 });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn records_in_order() {
        let mut t = Tracer::with_capacity(16);
        for i in 0..5u64 {
            t.record(i, 0, TraceEventKind::MissFill { line: i });
        }
        let ev = t.events();
        assert_eq!(ev.len(), 5);
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.time, i as u64);
        }
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let mut t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.record(i, 0, TraceEventKind::MissFill { line: i });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let times: Vec<u64> = t.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![6, 7, 8, 9], "oldest→newest after wrap");
        let (ev, dropped) = t.into_events();
        assert_eq!(dropped, 6);
        assert_eq!(ev.first().map(|e| e.time), Some(6));
        assert_eq!(ev.last().map(|e| e.time), Some(9));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut t = Tracer::with_capacity(0);
        t.record(1, 0, TraceEventKind::HorizonJump { span: 3 });
        t.record(2, 0, TraceEventKind::HorizonJump { span: 4 });
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].time, 2);
    }
}
