//! The metrics registry: named counters, gauges and histograms that
//! simulator components register into after a run, with JSON and CSV
//! snapshot export.
//!
//! Naming convention: dot-separated paths rooted at the producing
//! subsystem — `sim.cache.l2.miss`, `sim.mem.remote_miss`,
//! `sim.proc0.core.retired`, `sim.bus.utilization`. Per-processor
//! metrics carry a `proc<N>` path segment; unqualified names aggregate
//! over processors. Iteration and export order is lexicographic, so
//! snapshots are deterministic.

use std::collections::BTreeMap;

use crate::json::escape_json;

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Bin counts (semantics are the registrant's, e.g. "cycles with
    /// exactly `i` MSHRs occupied").
    Histogram(Vec<u64>),
}

/// A sorted name → [`Metric`] map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    map: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name` (creating it at 0).
    pub fn counter(&mut self, name: &str, v: u64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += v,
            other => *other = Metric::Counter(v),
        }
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.map.insert(name.to_string(), Metric::Gauge(v));
    }

    /// Sets the histogram `name` to `bins`.
    pub fn histogram(&mut self, name: &str, bins: &[u64]) {
        self.map
            .insert(name.to_string(), Metric::Histogram(bins.to_vec()));
    }

    /// Clones the metric registered under `canonical` into `alias`.
    /// No-op when `canonical` is absent. Used for deprecated metric
    /// names kept alive for old consumers (e.g. `sim.dir.*` aliasing
    /// the canonical `sim.coh.*` coherence metrics — DESIGN.md §7b).
    pub fn alias(&mut self, canonical: &str, alias: &str) {
        if let Some(m) = self.map.get(canonical).cloned() {
            self.map.insert(alias.to_string(), m);
        }
    }

    /// Looks a metric up by exact name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.map.get(name)
    }

    /// The counter's value, when `name` is a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.map.get(name) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates metrics in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// JSON snapshot:
    /// `{"metrics": {"<name>": {"type": ..., "value"|"bins": ...}, ...}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"metrics\": {\n");
        let lines: Vec<String> = self
            .map
            .iter()
            .map(|(name, m)| {
                let body = match m {
                    Metric::Counter(c) => format!("{{\"type\": \"counter\", \"value\": {c}}}"),
                    Metric::Gauge(g) => {
                        format!("{{\"type\": \"gauge\", \"value\": {}}}", fmt_f64(*g))
                    }
                    Metric::Histogram(bins) => {
                        let joined: Vec<String> = bins.iter().map(u64::to_string).collect();
                        match histogram_percentiles(bins) {
                            Some([p50, p95, p99]) => format!(
                                "{{\"type\": \"histogram\", \"bins\": [{}], \
                                 \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}",
                                joined.join(", ")
                            ),
                            None => format!(
                                "{{\"type\": \"histogram\", \"bins\": [{}]}}",
                                joined.join(", ")
                            ),
                        }
                    }
                };
                format!("    \"{}\": {body}", escape_json(name))
            })
            .collect();
        s.push_str(&lines.join(",\n"));
        s.push_str("\n  }\n}\n");
        s
    }

    /// CSV snapshot with header `name,type,value,p50,p95,p99`; histogram
    /// bins are `;`-joined in the value column, with the percentile bin
    /// indices in the trailing columns (empty for counters/gauges and for
    /// all-zero histograms).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("name,type,value,p50,p95,p99\n");
        for (name, m) in &self.map {
            match m {
                Metric::Counter(c) => s.push_str(&format!("{name},counter,{c},,,\n")),
                Metric::Gauge(g) => s.push_str(&format!("{name},gauge,{},,,\n", fmt_f64(*g))),
                Metric::Histogram(bins) => {
                    let joined: Vec<String> = bins.iter().map(u64::to_string).collect();
                    let pct = match histogram_percentiles(bins) {
                        Some([p50, p95, p99]) => format!("{p50},{p95},{p99}"),
                        None => ",,".into(),
                    };
                    s.push_str(&format!("{name},histogram,{},{pct}\n", joined.join(";")));
                }
            }
        }
        s
    }
}

/// The p50/p95/p99 summary of a histogram: for each percentile `p`, the
/// smallest bin index whose cumulative count covers `p`% of the total
/// population. `None` when the histogram is empty or all-zero. What a
/// bin index *means* is the registrant's convention (occupancy level,
/// log2 reuse distance, ...), so the summary is reported in bin units.
pub fn histogram_percentiles(bins: &[u64]) -> Option<[usize; 3]> {
    let total: u64 = bins.iter().sum();
    if total == 0 {
        return None;
    }
    let mut out = [0usize; 3];
    for (slot, pct) in [(0usize, 50u64), (1, 95), (2, 99)] {
        let mut cum = 0u64;
        for (i, b) in bins.iter().enumerate() {
            cum += b;
            // cum/total >= pct/100, in integer arithmetic.
            if cum * 100 >= pct * total {
                out[slot] = i;
                break;
            }
        }
    }
    Some(out)
}

/// Shortest-roundtrip float formatting that stays valid JSON (no NaN or
/// infinity — clamped to null-ish 0, which cannot occur for the
/// simulator's ratios but keeps the exporter total).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them numbers
        // (JSON allows that) — nothing more to do.
        s
    } else {
        "0".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter("sim.cache.l2.miss", 3);
        r.counter("sim.cache.l2.miss", 4);
        assert_eq!(r.counter_value("sim.cache.l2.miss"), Some(7));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn export_is_sorted_and_valid() {
        let mut r = MetricsRegistry::new();
        r.gauge("sim.bus.utilization", 0.25);
        r.counter("sim.cache.l2.miss", 10);
        r.histogram("sim.cache.l2.mshr.read_occupancy", &[5, 3, 1]);
        let json = r.to_json();
        validate_json(&json).expect("registry JSON must be well-formed");
        let bus = json.find("sim.bus.utilization").unwrap();
        let miss = json.find("sim.cache.l2.miss").unwrap();
        assert!(bus < miss, "lexicographic export order");
        let csv = r.to_csv();
        assert!(csv.starts_with("name,type,value,p50,p95,p99\n"));
        // [5,3,1]: total 9 — p50 lands in bin 0 (5/9), p95/p99 in bin 2.
        assert!(csv.contains("sim.cache.l2.mshr.read_occupancy,histogram,5;3;1,0,2,2"));
        assert!(csv.contains("sim.cache.l2.miss,counter,10,,,"));
        assert!(json.contains("\"p50\": 0, \"p95\": 2, \"p99\": 2"));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn gauge_overwrites() {
        let mut r = MetricsRegistry::new();
        r.gauge("g", 1.0);
        r.gauge("g", 2.5);
        assert_eq!(r.get("g"), Some(&Metric::Gauge(2.5)));
    }

    #[test]
    fn percentile_summary() {
        assert_eq!(histogram_percentiles(&[]), None);
        assert_eq!(histogram_percentiles(&[0, 0]), None);
        assert_eq!(histogram_percentiles(&[1]), Some([0, 0, 0]));
        // 100 samples spread evenly over 10 bins: p50 at bin 4 (cum 50),
        // p95 at bin 9 (cum 100 covers 95 only at the last bin).
        assert_eq!(histogram_percentiles(&[10; 10]), Some([4, 9, 9]));
        // Heavy head: 98% at bin 0, a 2% outlier tail at bin 7 — p95 is
        // covered by the head, p99 needs the tail.
        let mut bins = vec![0u64; 8];
        bins[0] = 98;
        bins[7] = 2;
        assert_eq!(histogram_percentiles(&bins), Some([0, 0, 7]));
    }

    #[test]
    fn alias_clones_canonical() {
        let mut r = MetricsRegistry::new();
        r.counter("sim.coh.invalidations", 4);
        r.alias("sim.coh.invalidations", "sim.dir.invalidations");
        assert_eq!(r.counter_value("sim.dir.invalidations"), Some(4));
        // Aliasing a missing metric is a no-op.
        r.alias("sim.coh.nope", "sim.dir.nope");
        assert_eq!(r.get("sim.dir.nope"), None);
    }
}
