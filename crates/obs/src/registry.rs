//! The metrics registry: named counters, gauges and histograms that
//! simulator components register into after a run, with JSON and CSV
//! snapshot export.
//!
//! Naming convention: dot-separated paths rooted at the producing
//! subsystem — `sim.cache.l2.miss`, `sim.mem.remote_miss`,
//! `sim.proc0.core.retired`, `sim.bus.utilization`. Per-processor
//! metrics carry a `proc<N>` path segment; unqualified names aggregate
//! over processors. Iteration and export order is lexicographic, so
//! snapshots are deterministic.

use std::collections::BTreeMap;

use crate::json::escape_json;

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Bin counts (semantics are the registrant's, e.g. "cycles with
    /// exactly `i` MSHRs occupied").
    Histogram(Vec<u64>),
}

/// A sorted name → [`Metric`] map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    map: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name` (creating it at 0).
    pub fn counter(&mut self, name: &str, v: u64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += v,
            other => *other = Metric::Counter(v),
        }
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.map.insert(name.to_string(), Metric::Gauge(v));
    }

    /// Sets the histogram `name` to `bins`.
    pub fn histogram(&mut self, name: &str, bins: &[u64]) {
        self.map
            .insert(name.to_string(), Metric::Histogram(bins.to_vec()));
    }

    /// Looks a metric up by exact name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.map.get(name)
    }

    /// The counter's value, when `name` is a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.map.get(name) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates metrics in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// JSON snapshot:
    /// `{"metrics": {"<name>": {"type": ..., "value"|"bins": ...}, ...}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"metrics\": {\n");
        let lines: Vec<String> = self
            .map
            .iter()
            .map(|(name, m)| {
                let body = match m {
                    Metric::Counter(c) => format!("{{\"type\": \"counter\", \"value\": {c}}}"),
                    Metric::Gauge(g) => {
                        format!("{{\"type\": \"gauge\", \"value\": {}}}", fmt_f64(*g))
                    }
                    Metric::Histogram(bins) => {
                        let joined: Vec<String> = bins.iter().map(u64::to_string).collect();
                        format!(
                            "{{\"type\": \"histogram\", \"bins\": [{}]}}",
                            joined.join(", ")
                        )
                    }
                };
                format!("    \"{}\": {body}", escape_json(name))
            })
            .collect();
        s.push_str(&lines.join(",\n"));
        s.push_str("\n  }\n}\n");
        s
    }

    /// CSV snapshot with header `name,type,value`; histogram bins are
    /// `;`-joined in the value column.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("name,type,value\n");
        for (name, m) in &self.map {
            match m {
                Metric::Counter(c) => s.push_str(&format!("{name},counter,{c}\n")),
                Metric::Gauge(g) => s.push_str(&format!("{name},gauge,{}\n", fmt_f64(*g))),
                Metric::Histogram(bins) => {
                    let joined: Vec<String> = bins.iter().map(u64::to_string).collect();
                    s.push_str(&format!("{name},histogram,{}\n", joined.join(";")));
                }
            }
        }
        s
    }
}

/// Shortest-roundtrip float formatting that stays valid JSON (no NaN or
/// infinity — clamped to null-ish 0, which cannot occur for the
/// simulator's ratios but keeps the exporter total).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them numbers
        // (JSON allows that) — nothing more to do.
        s
    } else {
        "0".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter("sim.cache.l2.miss", 3);
        r.counter("sim.cache.l2.miss", 4);
        assert_eq!(r.counter_value("sim.cache.l2.miss"), Some(7));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn export_is_sorted_and_valid() {
        let mut r = MetricsRegistry::new();
        r.gauge("sim.bus.utilization", 0.25);
        r.counter("sim.cache.l2.miss", 10);
        r.histogram("sim.cache.l2.mshr.read_occupancy", &[5, 3, 1]);
        let json = r.to_json();
        validate_json(&json).expect("registry JSON must be well-formed");
        let bus = json.find("sim.bus.utilization").unwrap();
        let miss = json.find("sim.cache.l2.miss").unwrap();
        assert!(bus < miss, "lexicographic export order");
        let csv = r.to_csv();
        assert!(csv.starts_with("name,type,value\n"));
        assert!(csv.contains("sim.cache.l2.mshr.read_occupancy,histogram,5;3;1"));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn gauge_overwrites() {
        let mut r = MetricsRegistry::new();
        r.gauge("g", 1.0);
        r.gauge("g", 2.5);
        assert_eq!(r.get("g"), Some(&Metric::Gauge(2.5)));
    }
}
