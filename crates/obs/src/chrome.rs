//! Chrome `trace_event` JSON export — the format Perfetto and
//! `chrome://tracing` load directly.
//!
//! Mapping: each simulated processor is a thread (`tid`) inside the
//! run's process (`pid`); one simulated cycle is one trace-time unit
//! (the viewer displays it as a microsecond — the real clock rate is
//! recorded in `otherData.clock_mhz`). Misses and stalls become complete
//! (`"ph": "X"`) duration events, MSHR occupancy becomes a counter
//! (`"ph": "C"`) track reconstructed from allocate/release events, and
//! coalesces/horizon jumps become instants (`"ph": "i"`).

use mempar_stats::StallClass;

use crate::json::escape_json;
use crate::reuse::ReuseSample;
use crate::trace::{TraceEvent, TraceEventKind, SYSTEM_PROC};

/// One simulated run to export (several runs — e.g. base vs clustered —
/// can share a file as separate processes).
#[derive(Debug, Clone, Copy)]
pub struct ChromeRun<'a> {
    /// Process name shown in the viewer (e.g. `latbench/clustered`).
    pub name: &'a str,
    /// Process id; must be unique across the exported runs.
    pub pid: u32,
    /// The run's events, oldest first (from [`crate::Tracer::events`]).
    pub events: &'a [TraceEvent],
    /// Cycle to close still-open spans at (the run's wall clock).
    pub end_cycle: u64,
    /// Sampled reuse distances (from a [`crate::ReuseProfiler`] tap),
    /// rendered as a per-processor `"ph": "C"` counter track. Empty for
    /// unprofiled runs — no track is emitted.
    pub reuse: &'a [ReuseSample],
}

fn stall_name(c: StallClass) -> &'static str {
    match c {
        StallClass::Cpu => "stall:cpu",
        StallClass::DataMemory => "stall:data",
        StallClass::Sync => "stall:sync",
        StallClass::Instruction => "stall:instr",
    }
}

/// Exports `runs` as one Chrome `trace_event` JSON document.
pub fn chrome_trace_json(runs: &[ChromeRun], clock_mhz: u32) -> String {
    let mut out: Vec<String> = Vec::new();
    for run in runs {
        emit_run(run, &mut out);
    }
    let mut s = String::from("{\n\"traceEvents\": [\n");
    s.push_str(&out.join(",\n"));
    s.push_str(&format!(
        "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {{\"clock_mhz\": {clock_mhz}, \"time_unit\": \"cycles\"}}\n}}\n"
    ));
    s
}

fn emit_run(run: &ChromeRun, out: &mut Vec<String>) {
    let pid = run.pid;
    out.push(format!(
        "{{\"ph\": \"M\", \"pid\": {pid}, \"name\": \"process_name\", \"args\": {{\"name\": \"{}\"}}}}",
        escape_json(run.name)
    ));

    // Open miss spans per (proc, line); open stall span per proc;
    // reconstructed MSHR occupancy per proc.
    let mut open_miss: Vec<(u32, u64, u64, bool, u32, u32)> = Vec::new();
    let mut open_stall: Vec<(u32, StallClass, u64)> = Vec::new();
    let mut outstanding: Vec<(u32, i64)> = Vec::new();
    let mut tids_seen: Vec<u32> = Vec::new();

    let note_tid = |tid: u32, tids: &mut Vec<u32>, out: &mut Vec<String>| {
        if !tids.contains(&tid) {
            tids.push(tid);
            let name = if tid == SYSTEM_PROC {
                "scheduler".to_string()
            } else {
                format!("proc {tid}")
            };
            // The scheduler row uses tid 0xffff to stay within viewer-
            // friendly ranges while sorting after real processors.
            let tid_num = if tid == SYSTEM_PROC { 0xffff } else { tid };
            out.push(format!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid_num}, \"name\": \"thread_name\", \"args\": {{\"name\": \"{name}\"}}}}"
            ));
        }
    };

    let counter = |proc: u32,
                   time: u64,
                   delta: i64,
                   outstanding: &mut Vec<(u32, i64)>,
                   out: &mut Vec<String>| {
        let idx = match outstanding.iter().position(|(p, _)| *p == proc) {
            Some(i) => i,
            None => {
                outstanding.push((proc, 0));
                outstanding.len() - 1
            }
        };
        // A ring that wrapped may deliver a release without its alloc.
        let slot = &mut outstanding[idx].1;
        *slot = (*slot + delta).max(0);
        out.push(format!(
            "{{\"ph\": \"C\", \"pid\": {pid}, \"tid\": {proc}, \"ts\": {time}, \"name\": \"mshrs p{proc}\", \"args\": {{\"outstanding\": {slot}}}}}"
        ));
    };

    for ev in run.events {
        note_tid(ev.proc, &mut tids_seen, out);
        match ev.kind {
            TraceEventKind::MissIssue {
                line,
                write,
                reads_outstanding,
                total_outstanding,
            } => {
                open_miss.push((
                    ev.proc,
                    line,
                    ev.time,
                    write,
                    reads_outstanding,
                    total_outstanding,
                ));
            }
            TraceEventKind::MissFill { line } => {
                if let Some(i) = open_miss
                    .iter()
                    .position(|&(p, l, ..)| p == ev.proc && l == line)
                {
                    let (proc, line, t0, write, reads, total) = open_miss.remove(i);
                    out.push(miss_span(pid, proc, line, t0, ev.time, write, reads, total));
                }
                // A fill whose issue fell off the ring is dropped.
            }
            TraceEventKind::MshrAlloc { .. } => {
                counter(ev.proc, ev.time, 1, &mut outstanding, out);
            }
            TraceEventKind::MshrRelease { .. } => {
                counter(ev.proc, ev.time, -1, &mut outstanding, out);
            }
            TraceEventKind::Coalesce { line } => {
                out.push(format!(
                    "{{\"ph\": \"i\", \"pid\": {pid}, \"tid\": {}, \"ts\": {}, \"s\": \"t\", \"cat\": \"mshr\", \"name\": \"coalesce\", \"args\": {{\"line\": \"0x{line:x}\"}}}}",
                    ev.proc, ev.time
                ));
            }
            TraceEventKind::StallBegin { class } => {
                open_stall.push((ev.proc, class, ev.time));
            }
            TraceEventKind::StallEnd { class } => {
                if let Some(i) = open_stall
                    .iter()
                    .position(|&(p, c, _)| p == ev.proc && c == class)
                {
                    let (proc, class, t0) = open_stall.remove(i);
                    out.push(stall_span(pid, proc, class, t0, ev.time));
                }
            }
            TraceEventKind::HorizonJump { span } => {
                out.push(format!(
                    "{{\"ph\": \"i\", \"pid\": {pid}, \"tid\": 65535, \"ts\": {}, \"s\": \"p\", \"cat\": \"scheduler\", \"name\": \"horizon jump\", \"args\": {{\"span\": {span}}}}}",
                    ev.time
                ));
            }
        }
    }
    // Close anything still open at the end of the run.
    for (proc, line, t0, write, reads, total) in open_miss {
        out.push(miss_span(
            pid,
            proc,
            line,
            t0,
            run.end_cycle.max(t0),
            write,
            reads,
            total,
        ));
    }
    for (proc, class, t0) in open_stall {
        out.push(stall_span(pid, proc, class, t0, run.end_cycle.max(t0)));
    }
    for s in run.reuse {
        note_tid(s.proc, &mut tids_seen, out);
        out.push(format!(
            "{{\"ph\": \"C\", \"pid\": {pid}, \"tid\": {}, \"ts\": {}, \"name\": \"reuse p{}\", \"args\": {{\"scaled_dist\": {}}}}}",
            s.proc, s.time, s.proc, s.scaled_dist
        ));
    }
}

#[allow(clippy::too_many_arguments)]
fn miss_span(
    pid: u32,
    proc: u32,
    line: u64,
    t0: u64,
    t1: u64,
    write: bool,
    reads: u32,
    total: u32,
) -> String {
    let cat = if write { "miss:write" } else { "miss:read" };
    format!(
        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {proc}, \"ts\": {t0}, \"dur\": {}, \"cat\": \"{cat}\", \"name\": \"miss 0x{line:x}\", \"args\": {{\"reads_at_issue\": {reads}, \"total_at_issue\": {total}}}}}",
        t1.saturating_sub(t0).max(1)
    )
}

fn stall_span(pid: u32, proc: u32, class: StallClass, t0: u64, t1: u64) -> String {
    format!(
        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {proc}, \"ts\": {t0}, \"dur\": {}, \"cat\": \"stall\", \"name\": \"{}\", \"args\": {{}}}}",
        t1.saturating_sub(t0).max(1),
        stall_name(class)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::trace::Tracer;

    fn sample_events() -> Vec<TraceEvent> {
        let mut t = Tracer::with_capacity(64);
        t.record(5, 0, TraceEventKind::MshrAlloc { line: 0x40 });
        t.record(
            5,
            0,
            TraceEventKind::MissIssue {
                line: 0x40,
                write: false,
                reads_outstanding: 1,
                total_outstanding: 1,
            },
        );
        t.record(
            6,
            0,
            TraceEventKind::StallBegin {
                class: StallClass::DataMemory,
            },
        );
        t.record(7, 0, TraceEventKind::Coalesce { line: 0x40 });
        t.record(30, SYSTEM_PROC, TraceEventKind::HorizonJump { span: 50 });
        t.record(90, 0, TraceEventKind::MissFill { line: 0x40 });
        t.record(90, 0, TraceEventKind::MshrRelease { line: 0x40 });
        t.record(
            91,
            0,
            TraceEventKind::StallEnd {
                class: StallClass::DataMemory,
            },
        );
        t.events()
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let events = sample_events();
        let runs = [ChromeRun {
            name: "unit",
            pid: 0,
            events: &events,
            end_cycle: 100,
            reuse: &[],
        }];
        let json = chrome_trace_json(&runs, 300);
        validate_json(&json).expect("chrome trace must be well-formed JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""), "duration events present");
        assert!(json.contains("\"ph\": \"C\""), "counter events present");
        assert!(json.contains("\"ph\": \"i\""), "instant events present");
        assert!(json.contains("miss 0x40"));
        assert!(json.contains("stall:data"));
        assert!(json.contains("horizon jump"));
        assert!(json.contains("\"clock_mhz\": 300"));
    }

    #[test]
    fn unmatched_spans_close_at_end() {
        let mut t = Tracer::with_capacity(8);
        t.record(
            10,
            1,
            TraceEventKind::MissIssue {
                line: 0x80,
                write: false,
                reads_outstanding: 1,
                total_outstanding: 1,
            },
        );
        t.record(
            12,
            1,
            TraceEventKind::StallBegin {
                class: StallClass::Sync,
            },
        );
        let events = t.events();
        let runs = [ChromeRun {
            name: "open",
            pid: 3,
            events: &events,
            end_cycle: 42,
            reuse: &[],
        }];
        let json = chrome_trace_json(&runs, 300);
        validate_json(&json).expect("valid");
        assert!(json.contains("\"dur\": 32"), "miss closed at end: {json}");
        assert!(json.contains("\"dur\": 30"), "stall closed at end");
    }

    #[test]
    fn stray_fill_after_wraparound_is_dropped() {
        let events = [TraceEvent {
            time: 9,
            proc: 0,
            kind: TraceEventKind::MissFill { line: 0x99 },
        }];
        let runs = [ChromeRun {
            name: "wrapped",
            pid: 0,
            events: &events,
            end_cycle: 10,
            reuse: &[],
        }];
        let json = chrome_trace_json(&runs, 300);
        validate_json(&json).expect("valid");
        assert!(!json.contains("0x99"), "fill without issue is dropped");
    }

    #[test]
    fn reuse_samples_become_counter_track() {
        let samples = [
            ReuseSample {
                time: 10,
                proc: 0,
                scaled_dist: 4,
            },
            ReuseSample {
                time: 25,
                proc: 1,
                scaled_dist: 1024,
            },
        ];
        let runs = [ChromeRun {
            name: "reuse",
            pid: 0,
            events: &[],
            end_cycle: 30,
            reuse: &samples,
        }];
        let json = chrome_trace_json(&runs, 300);
        validate_json(&json).expect("valid");
        assert!(json.contains("\"name\": \"reuse p0\""));
        assert!(json.contains("\"scaled_dist\": 1024"));
        assert!(
            json.contains("\"name\": \"proc 1\""),
            "tid metadata emitted"
        );
    }
}
