//! Sampled reuse-distance profiling over the dynamic-op address stream.
//!
//! The paper's `f`/α model takes per-reference miss probabilities as
//! *analytic* inputs: every leading line touch of a regular reference
//! misses, irregular references miss with a profiled `P_m`. This module
//! measures locality instead. It computes **LRU stack distances** (reuse
//! distances) over the simulator's dynamic-op stream — the number of
//! distinct cache lines touched between consecutive accesses to the same
//! line — and converts the resulting histogram into per-array miss
//! probabilities for each modeled cache level: for a fully-associative
//! LRU cache of `C` lines, an access hits iff its reuse distance is
//! `< C`, and cold first touches always miss.
//!
//! Exact stack-distance computation is an Olken-style order-statistics
//! structure; at billions of ops that is too expensive, so the profiler
//! samples in the style of SHARDS (Waldspurger et al., FAST'15):
//!
//! * A line is **monitored** iff `hash(line) < threshold` — a spatial
//!   filter, so every access to a monitored line is observed and
//!   distances stay exact *among monitored lines*.
//! * The monitored set is bounded (`max_samples`): on overflow the line
//!   with the largest hash is evicted and `threshold` drops to that
//!   hash, lowering the effective sampling rate `R = threshold / 2^64`.
//! * A sampled distance `d` estimates a true distance `d / R`, because
//!   the spatial filter thins the distinct-line count uniformly.
//!
//! Distances are tracked **per core**: each core's op stream is
//! deterministic and identical across steppers, engines and shard
//! counts, so the profile is bit-stable wherever the tap is placed. All
//! state lives in ordered structures (`BTreeMap`, a Fenwick tree over
//! slot indices, a `BinaryHeap` popped to exhaustion) — iteration order
//! never depends on hash-map layout, making reports reproducible
//! byte-for-byte for a fixed seed.
//!
//! See DESIGN.md §12 for the algorithm walk-through and the overhead
//! accounting in BENCH_sim.json.

use std::collections::{BTreeMap, BinaryHeap};

use mempar_analysis::{analyze_inner_loop, MachineSummary, MissProfile};
use mempar_ir::Program;
use mempar_stats::{format_rows, Row};
use mempar_transform::{innermost_loops, loop_at};

use crate::json::escape_json;
use crate::registry::{histogram_percentiles, MetricsRegistry};

/// SplitMix64: a full-period 64-bit mixer; the profiler's spatial filter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Profiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseConfig {
    /// Seed mixed into the spatial hash; two runs with the same seed
    /// produce byte-identical reports.
    pub seed: u64,
    /// Bound on simultaneously monitored lines (the SHARDS reservoir,
    /// shared across all cores). Cost per access is O(log max_samples).
    pub max_samples: usize,
    /// Bound on retained [`ReuseSample`]s for the Perfetto counter
    /// track; further samples still feed the histograms but are not
    /// individually kept.
    pub max_counter_samples: usize,
    /// Log2-distance histogram bins (bin `b > 0` covers scaled distances
    /// `[2^(b-1), 2^b)`, bin 0 is distance 0).
    pub hist_bins: usize,
}

impl Default for ReuseConfig {
    fn default() -> Self {
        ReuseConfig {
            seed: 0x5eed_0ca1_175e_ed00,
            max_samples: 4096,
            max_counter_samples: 1 << 16,
            hist_bins: 40,
        }
    }
}

/// One modeled cache level: a name (`l1`, `l2`, …) and its capacity in
/// lines. The hit model is fully-associative LRU — a deliberate
/// simplification of the sim's set-associative arrays, biased toward
/// slightly *overestimating* hits only under pathological conflict
/// patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseLevel {
    /// Level name, used in reports and JSON.
    pub name: String,
    /// Capacity in cache lines.
    pub lines: u64,
}

/// One retained sampled reuse event, for the Perfetto counter track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseSample {
    /// Simulated time (or op index, for pre-pass profiling) of the
    /// access.
    pub time: u64,
    /// Core whose stream the access belongs to.
    pub proc: u32,
    /// Rate-corrected reuse distance in lines.
    pub scaled_dist: u64,
}

/// One monitored line's bookkeeping inside a stream.
#[derive(Debug, Clone, Copy)]
struct SampledLine {
    slot: usize,
}

/// Per-core Olken state: recency order as slot indices (monotonically
/// allocated, periodically compacted) with a Fenwick tree counting
/// occupied slots, so "distinct monitored lines since last access" is
/// two O(log n) operations.
#[derive(Debug, Default)]
struct StreamState {
    /// line → slot.
    table: BTreeMap<u64, SampledLine>,
    /// slot → line (`u64::MAX` = vacated).
    slots: Vec<u64>,
    /// Fenwick tree over `slots` occupancy.
    fenwick: Vec<u64>,
    next_slot: usize,
}

const FREE: u64 = u64::MAX;

impl StreamState {
    fn with_capacity(cap: usize) -> Self {
        StreamState {
            table: BTreeMap::new(),
            slots: vec![FREE; cap],
            fenwick: vec![0; cap + 1],
            next_slot: 0,
        }
    }

    fn fenwick_add(&mut self, slot: usize, delta: i64) {
        let mut i = slot + 1;
        while i < self.fenwick.len() {
            self.fenwick[i] = self.fenwick[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Occupied slots with index `<= slot`.
    fn prefix(&self, slot: usize) -> u64 {
        let mut i = slot + 1;
        let mut sum = 0u64;
        while i > 0 {
            sum = sum.wrapping_add(self.fenwick[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }

    fn vacate(&mut self, slot: usize) {
        debug_assert_ne!(self.slots[slot], FREE);
        self.slots[slot] = FREE;
        self.fenwick_add(slot, -1);
    }

    /// Allocates the most-recent slot for `line`, compacting first when
    /// the slot arena is exhausted. Compaction preserves relative order
    /// and rewrites the table's slot indices, so it is invisible to
    /// distance queries.
    fn place(&mut self, line: u64) -> usize {
        if self.next_slot == self.slots.len() {
            let mut k = 0usize;
            for i in 0..self.slots.len() {
                let l = self.slots[i];
                if l != FREE {
                    self.slots[k] = l;
                    self.table.get_mut(&l).expect("occupied slot in table").slot = k;
                    k += 1;
                }
            }
            for s in self.slots[k..].iter_mut() {
                *s = FREE;
            }
            for f in self.fenwick.iter_mut() {
                *f = 0;
            }
            self.next_slot = k;
            for i in 0..k {
                self.fenwick_add(i, 1);
            }
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.slots[slot] = line;
        self.fenwick_add(slot, 1);
        slot
    }
}

/// Per-array accumulators.
#[derive(Debug, Clone)]
struct ArrayAcc {
    accesses: u64,
    sampled: u64,
    cold: u64,
    hist: Vec<u64>,
    /// Σ 1/R over sampled accesses.
    weight: f64,
    /// Σ 1/R over sampled accesses that miss, per level.
    miss_weight: Vec<f64>,
}

impl ArrayAcc {
    fn new(hist_bins: usize, levels: usize) -> Self {
        ArrayAcc {
            accesses: 0,
            sampled: 0,
            cold: 0,
            hist: vec![0; hist_bins],
            weight: 0.0,
            miss_weight: vec![0.0; levels],
        }
    }
}

/// The streaming reuse-distance profiler. Feed it every memory op with
/// [`ReuseProfiler::observe`]; read the result with
/// [`ReuseProfiler::report`] / [`ReuseProfiler::export_metrics`].
#[derive(Debug)]
pub struct ReuseProfiler {
    cfg: ReuseConfig,
    line_shift: u32,
    levels: Vec<ReuseLevel>,
    streams: Vec<StreamState>,
    /// Max-heap of (hash, line, stream) over all monitored lines.
    heap: BinaryHeap<(u64, u64, u32)>,
    live: usize,
    threshold: u64,
    accesses: u64,
    sampled: u64,
    evictions: u64,
    arrays: Vec<ArrayAcc>,
    samples: Vec<ReuseSample>,
    samples_dropped: u64,
}

impl ReuseProfiler {
    /// A profiler for `nstreams` cores over a program with `narrays`
    /// arrays (index `narrays` is the "(other)" bucket for unattributed
    /// addresses). `line_shift` is log2 of the line size the distances
    /// are counted in; `levels` are the cache capacities to derive miss
    /// probabilities for, innermost first.
    pub fn new(
        cfg: ReuseConfig,
        line_shift: u32,
        levels: Vec<ReuseLevel>,
        narrays: usize,
        nstreams: usize,
    ) -> Self {
        assert!(cfg.max_samples > 0 && cfg.hist_bins > 0 && nstreams > 0);
        let cap = (4 * cfg.max_samples).max(64);
        ReuseProfiler {
            arrays: vec![ArrayAcc::new(cfg.hist_bins, levels.len()); narrays + 1],
            streams: (0..nstreams)
                .map(|_| StreamState::with_capacity(cap))
                .collect(),
            heap: BinaryHeap::new(),
            live: 0,
            threshold: u64::MAX,
            accesses: 0,
            sampled: 0,
            evictions: 0,
            samples: Vec::new(),
            samples_dropped: 0,
            cfg,
            line_shift,
            levels,
        }
    }

    /// The current effective sampling rate `R = threshold / 2^64`.
    pub fn sampling_rate(&self) -> f64 {
        self.threshold as f64 / 1.844_674_407_370_955_2e19
    }

    /// Total accesses observed (sampled or not).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Retained samples for the counter track.
    pub fn samples(&self) -> &[ReuseSample] {
        &self.samples
    }

    /// Consumes the profiler, returning the retained samples.
    pub fn into_samples(self) -> Vec<ReuseSample> {
        self.samples
    }

    /// Observes one memory access on core `proc` at simulated time (or
    /// op index) `time`. `array` attributes the address to a program
    /// array index (`None` → the "(other)" bucket).
    pub fn observe(&mut self, proc: usize, time: u64, addr: u64, array: Option<usize>) {
        self.accesses += 1;
        let ai = array
            .filter(|&a| a < self.arrays.len() - 1)
            .unwrap_or(self.arrays.len() - 1);
        self.arrays[ai].accesses += 1;
        let line = addr >> self.line_shift;
        let hash = splitmix64(line ^ self.cfg.seed);
        if hash >= self.threshold {
            return;
        }
        let weight = 1.0 / self.sampling_rate();
        self.sampled += 1;
        let acc = &mut self.arrays[ai];
        acc.sampled += 1;
        acc.weight += weight;
        let st = &mut self.streams[proc];
        if let Some(&SampledLine { slot }) = st.table.get(&line) {
            // Reuse: distance = monitored lines touched more recently.
            let dist = st.table.len() as u64 - st.prefix(slot);
            st.vacate(slot);
            let ns = st.place(line);
            st.table.get_mut(&line).expect("hit stays resident").slot = ns;
            let scaled = (dist as f64 * weight).round() as u64;
            let bin = (64 - scaled.leading_zeros() as usize).min(self.cfg.hist_bins - 1);
            acc.hist[bin] += 1;
            for (l, lvl) in self.levels.iter().enumerate() {
                if scaled >= lvl.lines {
                    acc.miss_weight[l] += weight;
                }
            }
            if self.samples.len() < self.cfg.max_counter_samples {
                self.samples.push(ReuseSample {
                    time,
                    proc: proc as u32,
                    scaled_dist: scaled,
                });
            } else {
                self.samples_dropped += 1;
            }
        } else {
            // Cold first touch of a monitored line: a compulsory miss at
            // every level.
            acc.cold += 1;
            for w in acc.miss_weight.iter_mut() {
                *w += weight;
            }
            let ns = st.place(line);
            st.table.insert(line, SampledLine { slot: ns });
            self.heap.push((hash, line, proc as u32));
            self.live += 1;
            if self.live > self.cfg.max_samples {
                self.shrink();
            }
        }
    }

    /// Evicts the largest-hash monitored line(s) and lowers the
    /// threshold to the evicted hash — the SHARDS fixed-size policy.
    fn shrink(&mut self) {
        while self.live > self.cfg.max_samples {
            let (hash, line, sp) = self.heap.pop().expect("live lines imply heap entries");
            self.threshold = hash;
            let st = &mut self.streams[sp as usize];
            let e = st.table.remove(&line).expect("heap tracks resident lines");
            st.vacate(e.slot);
            self.live -= 1;
            self.evictions += 1;
        }
        // Hash ties at the new threshold are no longer monitorable
        // (`hash < threshold` fails); drop them too so the reservoir
        // matches the filter exactly.
        while let Some(&(hash, line, sp)) = self.heap.peek() {
            if hash < self.threshold {
                break;
            }
            self.heap.pop();
            let st = &mut self.streams[sp as usize];
            let e = st.table.remove(&line).expect("heap tracks resident lines");
            st.vacate(e.slot);
            self.live -= 1;
            self.evictions += 1;
        }
    }

    /// Registers `sim.reuse.*` metrics: stream totals, the sampling
    /// rate, and the aggregate log2-distance histogram with percentile
    /// gauges (bin units; see [`histogram_percentiles`]).
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("sim.reuse.accesses", self.accesses);
        reg.counter("sim.reuse.sampled", self.sampled);
        reg.counter("sim.reuse.evictions", self.evictions);
        reg.counter("sim.reuse.samples_dropped", self.samples_dropped);
        reg.gauge("sim.reuse.sampling_rate", self.sampling_rate());
        reg.gauge("sim.reuse.reservoir", self.live as f64);
        let mut hist = vec![0u64; self.cfg.hist_bins];
        for a in &self.arrays {
            for (h, b) in hist.iter_mut().zip(&a.hist) {
                *h += b;
            }
        }
        if let Some([p50, p95, p99]) = histogram_percentiles(&hist) {
            reg.gauge("sim.reuse.dist.p50", bin_rep(p50) as f64);
            reg.gauge("sim.reuse.dist.p95", bin_rep(p95) as f64);
            reg.gauge("sim.reuse.dist.p99", bin_rep(p99) as f64);
        }
        reg.histogram("sim.reuse.dist", &hist);
    }

    /// Distills the run into a [`ReuseReport`]. `array_names` maps array
    /// indices to display names (the program's declaration order).
    pub fn report(&self, array_names: &[String]) -> ReuseReport {
        assert_eq!(array_names.len() + 1, self.arrays.len());
        let mut arrays = Vec::new();
        for (i, acc) in self.arrays.iter().enumerate() {
            if acc.accesses == 0 {
                continue;
            }
            let name = array_names
                .get(i)
                .cloned()
                .unwrap_or_else(|| "(other)".into());
            let [p50, p95, p99] = histogram_percentiles(&acc.hist)
                .map(|p| p.map(bin_rep))
                .unwrap_or([0; 3]);
            let miss_prob: Vec<f64> = acc
                .miss_weight
                .iter()
                .map(|&w| {
                    if acc.weight > 0.0 {
                        (w / acc.weight).clamp(0.0, 1.0)
                    } else {
                        0.0
                    }
                })
                .collect();
            let p_ext = miss_prob.last().copied().unwrap_or(0.0);
            arrays.push(ArrayReuse {
                name,
                accesses: acc.accesses,
                sampled: acc.sampled,
                cold: acc.cold,
                hist: acc.hist.clone(),
                p50,
                p95,
                p99,
                miss_prob,
                // Measured accesses-per-miss at the external level; 0
                // encodes "no misses observed".
                l_m: if p_ext > 0.0 { 1.0 / p_ext } else { 0.0 },
            });
        }
        ReuseReport {
            sampling_rate: self.sampling_rate(),
            accesses: self.accesses,
            sampled: self.sampled,
            evictions: self.evictions,
            levels: self.levels.clone(),
            arrays,
        }
    }
}

/// Representative scaled distance of log2 bin `b` (its lower edge).
fn bin_rep(bin: usize) -> u64 {
    if bin == 0 {
        0
    } else {
        1u64 << (bin - 1)
    }
}

/// Measured locality of one array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayReuse {
    /// Array name (or `(other)` for unattributed addresses).
    pub name: String,
    /// Total accesses (sampled or not).
    pub accesses: u64,
    /// Sampled accesses.
    pub sampled: u64,
    /// Sampled cold first touches.
    pub cold: u64,
    /// Log2 histogram of rate-corrected reuse distances.
    pub hist: Vec<u64>,
    /// Median scaled reuse distance (bin lower edge).
    pub p50: u64,
    /// 95th-percentile scaled reuse distance.
    pub p95: u64,
    /// 99th-percentile scaled reuse distance.
    pub p99: u64,
    /// Per-level measured miss probability (cold included), in the
    /// report's level order.
    pub miss_prob: Vec<f64>,
    /// Measured accesses per external-cache miss (0 = no misses seen).
    pub l_m: f64,
}

/// A run's complete measured-locality report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseReport {
    /// Final effective sampling rate.
    pub sampling_rate: f64,
    /// Total accesses observed.
    pub accesses: u64,
    /// Sampled accesses.
    pub sampled: u64,
    /// Reservoir evictions (threshold reductions).
    pub evictions: u64,
    /// Modeled cache levels, innermost first.
    pub levels: Vec<ReuseLevel>,
    /// Per-array measurements, declaration order, `(other)` last.
    pub arrays: Vec<ArrayReuse>,
}

impl ReuseReport {
    /// Measured external-cache miss probability for array index `i` in
    /// declaration order, when the array was observed.
    pub fn miss_prob_of(&self, name: &str) -> Option<f64> {
        self.arrays
            .iter()
            .find(|a| a.name == name)
            .and_then(|a| a.miss_prob.last().copied())
    }

    /// Renders the report as an aligned text table (one row per array).
    pub fn format_table(&self, title: &str) -> String {
        let mut headers: Vec<String> = ["accesses", "sampled", "cold", "p50", "p95", "p99"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for l in &self.levels {
            headers.push(format!("p({})", l.name));
        }
        headers.push("L_m".into());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Row> = self
            .arrays
            .iter()
            .map(|a| {
                let mut cells = vec![
                    format!("{}", a.accesses),
                    format!("{}", a.sampled),
                    format!("{}", a.cold),
                    format!("{}", a.p50),
                    format!("{}", a.p95),
                    format!("{}", a.p99),
                ];
                for p in &a.miss_prob {
                    cells.push(format!("{p:.3}"));
                }
                cells.push(if a.l_m > 0.0 {
                    format!("{:.1}", a.l_m)
                } else {
                    "-".into()
                });
                Row::new(&a.name, cells)
            })
            .collect();
        let mut out = format_rows(title, &header_refs, &rows);
        out.push_str(&format!(
            "  (sampling rate {:.4}, {} of {} accesses sampled, {} evictions)\n",
            self.sampling_rate, self.sampled, self.accesses, self.evictions
        ));
        out
    }

    /// JSON object export (the `report` member of the `--reuse-out`
    /// file; see schemas/obs-reuse.schema.json).
    pub fn to_json(&self) -> String {
        let levels: Vec<String> = self
            .levels
            .iter()
            .map(|l| {
                format!(
                    "{{\"name\": \"{}\", \"lines\": {}}}",
                    escape_json(&l.name),
                    l.lines
                )
            })
            .collect();
        let arrays: Vec<String> = self
            .arrays
            .iter()
            .map(|a| {
                let hist: Vec<String> = a.hist.iter().map(u64::to_string).collect();
                let probs: Vec<String> = a.miss_prob.iter().map(|p| format!("{p:.6}")).collect();
                format!(
                    "      {{\"name\": \"{}\", \"accesses\": {}, \"sampled\": {}, \"cold\": {}, \
                     \"p50\": {}, \"p95\": {}, \"p99\": {}, \"hist\": [{}], \
                     \"miss_prob\": [{}], \"l_m\": {:.4}}}",
                    escape_json(&a.name),
                    a.accesses,
                    a.sampled,
                    a.cold,
                    a.p50,
                    a.p95,
                    a.p99,
                    hist.join(", "),
                    probs.join(", "),
                    a.l_m
                )
            })
            .collect();
        format!(
            "{{\n    \"sampling_rate\": {:.6}, \"accesses\": {}, \"sampled\": {}, \
             \"evictions\": {},\n    \"levels\": [{}],\n    \"arrays\": [\n{}\n    ]\n  }}",
            self.sampling_rate,
            self.accesses,
            self.sampled,
            self.evictions,
            levels.join(", "),
            arrays.join(",\n")
        )
    }
}

/// One predicted-vs-measured row of the calibration table: the leading
/// reference of one array in one innermost nest, under the analytic and
/// the measured locality model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Array name.
    pub array: String,
    /// Innermost-nest index (program order).
    pub nest: usize,
    /// Static (predicted) iterations per line, `L_m`.
    pub l_m_pred: f64,
    /// Measured accesses per external-cache miss (0 = no misses seen).
    pub l_m_meas: f64,
    /// The reference's miss probability under the analytic model.
    pub p_pred: f64,
    /// The reference's miss probability under the measured model.
    pub p_meas: f64,
    /// The nest's `f` under the analytic model.
    pub f_pred: f64,
    /// The nest's `f` under the measured model.
    pub f_meas: f64,
    /// The nest's recurrence bound α (same under both models).
    pub alpha: f64,
}

/// The predicted-vs-measured calibration report for one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaReport {
    /// Rows in nest order, first leading read reference per array.
    pub rows: Vec<DeltaRow>,
}

impl DeltaReport {
    /// Renders the delta table.
    pub fn format_table(&self, title: &str) -> String {
        let rows: Vec<Row> = self
            .rows
            .iter()
            .map(|r| {
                Row::new(
                    &r.array,
                    vec![
                        format!("{:.0}", r.l_m_pred),
                        if r.l_m_meas > 0.0 {
                            format!("{:.1}", r.l_m_meas)
                        } else {
                            "-".into()
                        },
                        format!("{:.3}", r.p_pred),
                        format!("{:.3}", r.p_meas),
                        format!("{:.2}", r.f_pred),
                        format!("{:.2}", r.f_meas),
                        format!("{:.2}", r.alpha),
                    ],
                )
            })
            .collect();
        format_rows(
            title,
            &[
                "L_m pred", "L_m meas", "P_m pred", "P_m meas", "f pred", "f meas", "alpha",
            ],
            &rows,
        )
    }

    /// JSON object export (the `delta` member of the `--reuse-out` file).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "      {{\"array\": \"{}\", \"nest\": {}, \"l_m_pred\": {:.4}, \
                     \"l_m_meas\": {:.4}, \"p_pred\": {:.6}, \"p_meas\": {:.6}, \
                     \"f_pred\": {:.4}, \"f_meas\": {:.4}, \"alpha\": {:.4}}}",
                    escape_json(&r.array),
                    r.nest,
                    r.l_m_pred,
                    r.l_m_meas,
                    r.p_pred,
                    r.p_meas,
                    r.f_pred,
                    r.f_meas,
                    r.alpha
                )
            })
            .collect();
        format!("{{\n    \"rows\": [\n{}\n    ]\n  }}", rows.join(",\n"))
    }
}

/// Builds the predicted-vs-measured calibration report: every innermost
/// nest is analyzed twice — under `analytic` (the paper's model) and
/// under `measured` (a profile carrying
/// [`mempar_analysis::ArrayLocality`] records) — and each array's first
/// leading read reference contributes one row. `report` supplies the
/// measured `L_m` column.
pub fn locality_delta(
    prog: &Program,
    m: &MachineSummary,
    analytic: &MissProfile,
    measured: &MissProfile,
    report: &ReuseReport,
) -> DeltaReport {
    let mut rows: Vec<DeltaRow> = Vec::new();
    for (nest_idx, path) in innermost_loops(prog).iter().enumerate() {
        let Some(lp) = loop_at(prog, path) else {
            continue;
        };
        let a_pred = analyze_inner_loop(prog, &lp.body, lp.var, m, analytic);
        let a_meas = analyze_inner_loop(prog, &lp.body, lp.var, m, measured);
        for rp in a_pred.refs.leading() {
            if rp.is_write {
                continue;
            }
            let name = &prog.array(rp.array).name;
            if rows.iter().any(|r| &r.array == name) {
                continue;
            }
            // `collect_refs` is deterministic, so ids line up across the
            // two analyses of the same body.
            let rm = &a_meas.refs.refs[rp.id];
            rows.push(DeltaRow {
                array: name.clone(),
                nest: nest_idx,
                l_m_pred: f64::from(rp.l_m),
                l_m_meas: report
                    .arrays
                    .iter()
                    .find(|a| &a.name == name)
                    .map_or(0.0, |a| a.l_m),
                p_pred: rp.p_miss,
                p_meas: rm.p_miss,
                f_pred: a_pred.f,
                f_meas: a_meas.f,
                alpha: a_pred.recurrences.alpha,
            });
        }
    }
    DeltaReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use mempar_analysis::ArrayLocality;
    use mempar_ir::{ArrayId, ProgramBuilder};

    fn exact_cfg() -> ReuseConfig {
        ReuseConfig {
            max_samples: 1 << 20,
            ..ReuseConfig::default()
        }
    }

    fn levels(lines: &[(&str, u64)]) -> Vec<ReuseLevel> {
        lines
            .iter()
            .map(|&(name, lines)| ReuseLevel {
                name: name.into(),
                lines,
            })
            .collect()
    }

    /// Feed a line-index pattern (one access per line id, line size 64).
    fn feed(p: &mut ReuseProfiler, pattern: &[u64]) {
        for (t, &l) in pattern.iter().enumerate() {
            p.observe(0, t as u64, l << 6, Some(0));
        }
    }

    #[test]
    fn exact_distances_without_sampling_pressure() {
        let mut p = ReuseProfiler::new(exact_cfg(), 6, levels(&[("l2", 2)]), 1, 1);
        // 0 1 2 0: the re-access to 0 has stack distance 2.
        feed(&mut p, &[0, 1, 2, 0]);
        assert_eq!(p.accesses(), 4);
        assert!((p.sampling_rate() - 1.0).abs() < 1e-9);
        let rep = p.report(&["a".into()]);
        let a = &rep.arrays[0];
        assert_eq!(a.cold, 3);
        assert_eq!(a.sampled, 4);
        // Distance 2 lands in bin 2 ([2,4)).
        assert_eq!(a.hist[2], 1);
        assert_eq!(a.hist.iter().sum::<u64>(), 1);
        // With a 2-line cache the reuse at distance 2 misses: 4 sampled
        // accesses, 3 cold + 1 capacity miss -> p = 1.0.
        assert_eq!(a.miss_prob, vec![1.0]);
        // Immediate reuse is a hit: 0 0 at distance 0.
        let mut p2 = ReuseProfiler::new(exact_cfg(), 6, levels(&[("l2", 2)]), 1, 1);
        feed(&mut p2, &[0, 0, 1, 0]);
        let rep2 = p2.report(&["a".into()]);
        let a2 = &rep2.arrays[0];
        // Distances: 0 (hit), then 0->0 with 1 intervening line (hit).
        assert_eq!(a2.cold, 2);
        assert!((a2.miss_prob[0] - 0.5).abs() < 1e-12, "{:?}", a2.miss_prob);
    }

    #[test]
    fn sweep_hits_when_cache_holds_working_set() {
        let n = 16u64;
        let pattern: Vec<u64> = (0..n).chain(0..n).collect();
        // Cache holds 64 lines: the second sweep (distance 15) hits.
        let mut big = ReuseProfiler::new(exact_cfg(), 6, levels(&[("l2", 64)]), 1, 1);
        feed(&mut big, &pattern);
        let rep = big.report(&["a".into()]);
        let a = &rep.arrays[0];
        assert_eq!(a.cold, n);
        assert!((a.miss_prob[0] - 0.5).abs() < 1e-12, "only compulsory");
        assert_eq!(a.p50, 8, "distance 15 bins to [8,16)");
        // Cache holds 8 lines: the same reuses all miss.
        let mut small = ReuseProfiler::new(exact_cfg(), 6, levels(&[("l2", 8)]), 1, 1);
        feed(&mut small, &pattern);
        let rep = small.report(&["a".into()]);
        assert_eq!(rep.arrays[0].miss_prob, vec![1.0]);
        // Measured L_m = accesses per miss = 1/1.0.
        assert!((rep.arrays[0].l_m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn streams_are_independent() {
        let mut p = ReuseProfiler::new(exact_cfg(), 6, levels(&[("l2", 4)]), 1, 2);
        // Core 0 re-accesses line 0 with one intervening line; core 1
        // touches many lines in between, which must not dilate core 0's
        // distance.
        p.observe(0, 0, 0 << 6, Some(0));
        for (t, l) in (100..180).enumerate() {
            p.observe(1, t as u64, (l as u64) << 6, Some(0));
        }
        p.observe(0, 200, 1 << 6, Some(0));
        p.observe(0, 201, 0 << 6, Some(0));
        let rep = p.report(&["a".into()]);
        let a = &rep.arrays[0];
        // One reuse at distance 1 -> bin 1, a hit in a 4-line cache.
        assert_eq!(a.hist[1], 1);
        let misses = a.miss_prob[0] * a.sampled as f64;
        assert!((misses - a.cold as f64).abs() < 1e-6, "reuse was a hit");
    }

    #[test]
    fn bounded_sampling_approximates_exact() {
        // A deterministic mixed-locality stream over 512 lines: hot head
        // (0..8) plus an LCG walk over the full range.
        let mut pattern = Vec::new();
        let mut x = 12345u64;
        for i in 0..30_000u64 {
            pattern.push(i % 8);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            pattern.push((x >> 33) % 512);
        }
        // Level boundaries sit well away from the hot set's ~15-line
        // reuse distance, so rounding under rate correction cannot flip
        // half the population across a boundary.
        let lv = levels(&[("l1", 64), ("l2", 2048)]);
        let mut exact = ReuseProfiler::new(exact_cfg(), 6, lv.clone(), 1, 1);
        feed(&mut exact, &pattern);
        let mut sampled = ReuseProfiler::new(
            ReuseConfig {
                max_samples: 64,
                ..ReuseConfig::default()
            },
            6,
            lv,
            1,
            1,
        );
        feed(&mut sampled, &pattern);
        assert!(sampled.sampling_rate() < 1.0, "pressure lowered the rate");
        let e = exact.report(&["a".into()]);
        let s = sampled.report(&["a".into()]);
        for l in 0..2 {
            let (pe, ps) = (e.arrays[0].miss_prob[l], s.arrays[0].miss_prob[l]);
            assert!(
                (pe - ps).abs() < 0.15,
                "level {l}: exact {pe:.3} vs sampled {ps:.3}"
            );
        }
    }

    #[test]
    fn reports_are_seed_stable() {
        let mut pattern = Vec::new();
        let mut x = 99u64;
        for _ in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            pattern.push((x >> 40) % 300);
        }
        let cfg = ReuseConfig {
            max_samples: 32,
            ..ReuseConfig::default()
        };
        let run = || {
            let mut p = ReuseProfiler::new(cfg, 6, levels(&[("l2", 64)]), 1, 1);
            feed(&mut p, &pattern);
            p.report(&["a".into()]).to_json()
        };
        assert_eq!(run(), run(), "same seed, same bytes");
        // A different seed samples different lines but estimates the
        // same distribution.
        let mut other = ReuseProfiler::new(
            ReuseConfig {
                seed: 0xdead_beef,
                ..cfg
            },
            6,
            levels(&[("l2", 64)]),
            1,
            1,
        );
        feed(&mut other, &pattern);
        let op = other.report(&["a".into()]).arrays[0].miss_prob[0];
        let mut base = ReuseProfiler::new(cfg, 6, levels(&[("l2", 64)]), 1, 1);
        feed(&mut base, &pattern);
        let bp = base.report(&["a".into()]).arrays[0].miss_prob[0];
        assert!((op - bp).abs() < 0.2, "seed-robust estimate: {op} vs {bp}");
    }

    #[test]
    fn compaction_preserves_distances() {
        // max_samples 16 -> slot arena 64; hammer two lines until many
        // compactions have happened, distances must stay exact.
        let cfg = ReuseConfig {
            max_samples: 16,
            ..ReuseConfig::default()
        };
        let mut p = ReuseProfiler::new(cfg, 6, levels(&[("l2", 4)]), 1, 1);
        let pattern: Vec<u64> = (0..500).map(|i| i % 2).collect();
        feed(&mut p, &pattern);
        let rep = p.report(&["a".into()]);
        let a = &rep.arrays[0];
        // Every non-cold access reuses at distance 1 (bin 1).
        assert_eq!(a.hist[1], 498);
        assert_eq!(a.cold, 2);
        assert!((a.miss_prob[0] - 2.0 / 500.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_tracks_reservoir_bound() {
        let cfg = ReuseConfig {
            max_samples: 8,
            ..ReuseConfig::default()
        };
        let mut p = ReuseProfiler::new(cfg, 6, levels(&[("l2", 4)]), 1, 1);
        feed(&mut p, &(0..10_000u64).collect::<Vec<_>>());
        assert!(p.live <= 8);
        assert!(p.evictions > 0);
        assert!(p.sampling_rate() < 0.1, "rate {}", p.sampling_rate());
        let mut reg = MetricsRegistry::new();
        p.export_metrics(&mut reg);
        assert_eq!(reg.counter_value("sim.reuse.accesses"), Some(10_000));
        assert!(reg.get("sim.reuse.dist").is_some());
        assert!(reg.get("sim.reuse.sampling_rate").is_some());
    }

    #[test]
    fn report_table_and_json_are_well_formed() {
        let mut p = ReuseProfiler::new(exact_cfg(), 6, levels(&[("l1", 4), ("l2", 64)]), 1, 1);
        feed(&mut p, &[0, 1, 2, 0, 1, 2, 50, 51]);
        // One unattributed access.
        p.observe(0, 99, 1 << 40, None);
        let rep = p.report(&["a".into()]);
        assert_eq!(rep.arrays.len(), 2, "a plus (other)");
        assert_eq!(rep.arrays[1].name, "(other)");
        let table = rep.format_table("reuse");
        assert!(table.contains("p(l1)") && table.contains("p(l2)"));
        assert!(table.contains("sampling rate"));
        let json = format!("{{\"report\": {}}}", rep.to_json());
        validate_json(&json).expect("reuse JSON well-formed");
        assert!(rep.miss_prob_of("a").is_some());
        assert_eq!(rep.miss_prob_of("nope"), None);
    }

    #[test]
    fn delta_report_reflects_measured_profile() {
        // A streaming reduction: analytic p = 1; a hot measurement
        // lowers the measured p and thus f.
        let mut b = ProgramBuilder::new("stream");
        let a = b.array_f64("a", &[1024]);
        let s = b.scalar_f64("sum", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 1024, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let acc = b.scalar(s);
            let e = b.add(acc, v);
            b.assign_scalar(s, e);
        });
        let prog = b.finish();
        let m = MachineSummary::base();
        let analytic = MissProfile::pessimistic();
        let mut measured = MissProfile::pessimistic();
        measured.set(a, 0.02);
        measured.set_measured(
            ArrayId::from_raw(0),
            ArrayLocality {
                access_miss_prob: 0.02,
                l_m: 50.0,
            },
        );
        let mut prof = ReuseProfiler::new(exact_cfg(), 6, levels(&[("l2", 1024)]), 1, 1);
        feed(&mut prof, &(0..128u64).collect::<Vec<_>>());
        let report = prof.report(&["a".into()]);
        let delta = locality_delta(&prog, &m, &analytic, &measured, &report);
        assert_eq!(delta.rows.len(), 1);
        let r = &delta.rows[0];
        assert_eq!(r.array, "a");
        assert_eq!(r.p_pred, 1.0);
        assert!((r.p_meas - 0.16).abs() < 1e-9, "0.02 * L_m 8 = 0.16");
        assert!(r.f_meas < r.f_pred, "hot array lowers f");
        let table = delta.format_table("delta");
        assert!(table.contains("P_m meas") && table.contains("f pred"));
        let json = format!("{{\"delta\": {}}}", delta.to_json());
        validate_json(&json).expect("delta JSON well-formed");
    }
}
