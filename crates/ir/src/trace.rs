//! Dynamic instructions produced by the interpreter and consumed by the
//! cycle-level simulator.
//!
//! The trace is *execution-driven*: ops are produced on demand as the
//! simulated processor fetches, so a full trace never needs to be
//! materialized. Register dependences are expressed through *virtual
//! register* numbers: each value-producing op is assigned a fresh vreg and
//! later ops name the vregs they consume. Vregs are monotonically
//! increasing per processor, which lets the simulator treat any vreg not
//! currently in flight as already available.

/// Maximum number of source operands carried by one dynamic op.
pub const MAX_SRCS: usize = 3;

/// A compact, fixed-capacity list of source vregs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SrcList {
    srcs: [u32; MAX_SRCS],
    len: u8,
}

impl SrcList {
    /// The empty source list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a source, keeping at most [`MAX_SRCS`] (later sources replace
    /// the oldest slot beyond capacity, which is conservative for timing:
    /// the most recently produced values are the ones most likely still in
    /// flight).
    pub fn push(&mut self, vreg: u32) {
        if self.srcs[..self.len as usize].contains(&vreg) {
            return;
        }
        if (self.len as usize) < MAX_SRCS {
            self.srcs[self.len as usize] = vreg;
            self.len += 1;
        } else {
            // Replace the smallest (oldest) vreg.
            let (pos, _) = self
                .srcs
                .iter()
                .enumerate()
                .min_by_key(|&(_, &v)| v)
                .expect("non-empty");
            if self.srcs[pos] < vreg {
                self.srcs[pos] = vreg;
            }
        }
    }

    /// The sources as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.srcs[..self.len as usize]
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when there are no sources.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl FromIterator<u32> for SrcList {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = SrcList::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

/// Floating-point functional-unit class, with the base-configuration
/// latencies of Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpUnit {
    /// Add/sub/mul and other “most FPU” ops: 3 cycles.
    Arith,
    /// FP divide: 16 cycles.
    Div,
    /// FP square root: 33 cycles.
    Sqrt,
}

impl FpUnit {
    /// Base-configuration latency in cycles.
    pub fn base_latency(self) -> u32 {
        match self {
            FpUnit::Arith => 3,
            FpUnit::Div => 16,
            FpUnit::Sqrt => 33,
        }
    }
}

/// The kind of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpKind {
    /// A data load of 8 bytes from `addr`.
    Load {
        /// Virtual (simulated) byte address.
        addr: u64,
    },
    /// A data store of 8 bytes to `addr`.
    Store {
        /// Virtual (simulated) byte address.
        addr: u64,
    },
    /// A floating-point operation on the given unit class.
    Fp {
        /// Functional-unit class (determines latency).
        unit: FpUnit,
    },
    /// An integer ALU operation (index arithmetic, compares).
    Int,
    /// An integer multiply/divide (7 cycles in the base configuration).
    IntMul,
    /// A (loop or guard) branch; assumed correctly predicted but occupying
    /// one of the limited unresolved-branch slots until its sources resolve.
    Branch,
    /// Global barrier; retires when every processor has reached it.
    Barrier {
        /// Sequence number of this barrier on the executing processor;
        /// processors synchronize on equal ids.
        id: u32,
    },
    /// Flag set with release semantics (waits for earlier stores to drain).
    FlagSet {
        /// Flag index.
        flag: u32,
    },
    /// Flag wait with acquire semantics (completes when the flag is set).
    FlagWait {
        /// Flag index.
        flag: u32,
    },
    /// A non-binding software prefetch of the line containing `addr`:
    /// starts the miss (if any) but produces no value and never blocks
    /// retirement.
    Prefetch {
        /// Virtual (simulated) byte address.
        addr: u64,
    },
    /// End-of-program marker (retires instantly; lets the simulator detect
    /// completion in the retire stage).
    Halt,
}

impl OpKind {
    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// The memory address for loads/stores.
    pub fn addr(&self) -> Option<u64> {
        match *self {
            OpKind::Load { addr } | OpKind::Store { addr } => Some(addr),
            _ => None,
        }
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynOp {
    /// What the instruction does.
    pub kind: OpKind,
    /// Vregs whose values the instruction consumes.
    pub srcs: SrcList,
    /// Vreg produced, if any.
    pub dst: Option<u32>,
}

impl DynOp {
    /// An op with no sources and no destination.
    pub fn nullary(kind: OpKind) -> Self {
        DynOp { kind, srcs: SrcList::new(), dst: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srclist_dedups() {
        let mut s = SrcList::new();
        s.push(4);
        s.push(4);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn srclist_keeps_most_recent_when_full() {
        let mut s = SrcList::new();
        s.push(1);
        s.push(2);
        s.push(3);
        s.push(10); // evicts 1
        let mut v = s.as_slice().to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![2, 3, 10]);
        s.push(0); // older than everything: dropped
        let mut v = s.as_slice().to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![2, 3, 10]);
    }

    #[test]
    fn srclist_from_iter() {
        let s: SrcList = [7u32, 8, 7].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn fp_latencies_match_table1() {
        assert_eq!(FpUnit::Arith.base_latency(), 3);
        assert_eq!(FpUnit::Div.base_latency(), 16);
        assert_eq!(FpUnit::Sqrt.base_latency(), 33);
    }

    #[test]
    fn opkind_mem_helpers() {
        assert!(OpKind::Load { addr: 8 }.is_mem());
        assert_eq!(OpKind::Store { addr: 16 }.addr(), Some(16));
        assert_eq!(OpKind::Int.addr(), None);
        assert!(!OpKind::Barrier { id: 0 }.is_mem());
    }
}
