//! Dynamic instructions produced by the interpreter and consumed by the
//! cycle-level simulator.
//!
//! The trace is *execution-driven*: ops are produced on demand as the
//! simulated processor fetches, so a full trace never needs to be
//! materialized. Register dependences are expressed through *virtual
//! register* numbers: each value-producing op is assigned a fresh vreg and
//! later ops name the vregs they consume. Vregs are monotonically
//! increasing per processor, which lets the simulator treat any vreg not
//! currently in flight as already available.

/// Maximum number of source operands carried by one dynamic op.
pub const MAX_SRCS: usize = 3;

/// A compact, fixed-capacity list of source vregs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SrcList {
    srcs: [u32; MAX_SRCS],
    len: u8,
}

impl SrcList {
    /// The empty source list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a source, keeping at most [`MAX_SRCS`] (later sources replace
    /// the oldest slot beyond capacity, which is conservative for timing:
    /// the most recently produced values are the ones most likely still in
    /// flight).
    pub fn push(&mut self, vreg: u32) {
        if self.srcs[..self.len as usize].contains(&vreg) {
            return;
        }
        if (self.len as usize) < MAX_SRCS {
            self.srcs[self.len as usize] = vreg;
            self.len += 1;
        } else {
            // Replace the smallest (oldest) vreg.
            let (pos, _) = self
                .srcs
                .iter()
                .enumerate()
                .min_by_key(|&(_, &v)| v)
                .expect("non-empty");
            if self.srcs[pos] < vreg {
                self.srcs[pos] = vreg;
            }
        }
    }

    /// The sources as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.srcs[..self.len as usize]
    }

    /// Removes the first occurrence of `vreg`, keeping order; returns
    /// whether it was present.
    pub fn remove(&mut self, vreg: u32) -> bool {
        let n = self.len as usize;
        for i in 0..n {
            if self.srcs[i] == vreg {
                self.srcs.copy_within(i + 1..n, i);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when there are no sources.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl FromIterator<u32> for SrcList {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = SrcList::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

/// Floating-point functional-unit class, with the base-configuration
/// latencies of Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpUnit {
    /// Add/sub/mul and other “most FPU” ops: 3 cycles.
    Arith,
    /// FP divide: 16 cycles.
    Div,
    /// FP square root: 33 cycles.
    Sqrt,
}

impl FpUnit {
    /// Base-configuration latency in cycles.
    pub fn base_latency(self) -> u32 {
        match self {
            FpUnit::Arith => 3,
            FpUnit::Div => 16,
            FpUnit::Sqrt => 33,
        }
    }
}

/// The kind of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpKind {
    /// A data load of 8 bytes from `addr`.
    Load {
        /// Virtual (simulated) byte address.
        addr: u64,
    },
    /// A data store of 8 bytes to `addr`.
    Store {
        /// Virtual (simulated) byte address.
        addr: u64,
    },
    /// A floating-point operation on the given unit class.
    Fp {
        /// Functional-unit class (determines latency).
        unit: FpUnit,
    },
    /// An integer ALU operation (index arithmetic, compares).
    Int,
    /// An integer multiply/divide (7 cycles in the base configuration).
    IntMul,
    /// A (loop or guard) branch; assumed correctly predicted but occupying
    /// one of the limited unresolved-branch slots until its sources resolve.
    Branch,
    /// Global barrier; retires when every processor has reached it.
    Barrier {
        /// Sequence number of this barrier on the executing processor;
        /// processors synchronize on equal ids.
        id: u32,
    },
    /// Flag set with release semantics (waits for earlier stores to drain).
    FlagSet {
        /// Flag index.
        flag: u32,
    },
    /// Flag wait with acquire semantics (completes when the flag is set).
    FlagWait {
        /// Flag index.
        flag: u32,
    },
    /// A non-binding software prefetch of the line containing `addr`:
    /// starts the miss (if any) but produces no value and never blocks
    /// retirement.
    Prefetch {
        /// Virtual (simulated) byte address.
        addr: u64,
    },
    /// End-of-program marker (retires instantly; lets the simulator detect
    /// completion in the retire stage).
    Halt,
}

impl OpKind {
    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// The memory address for loads/stores.
    pub fn addr(&self) -> Option<u64> {
        match *self {
            OpKind::Load { addr } | OpKind::Store { addr } => Some(addr),
            _ => None,
        }
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynOp {
    /// What the instruction does.
    pub kind: OpKind,
    /// Vregs whose values the instruction consumes.
    pub srcs: SrcList,
    /// Vreg produced, if any.
    pub dst: Option<u32>,
}

impl DynOp {
    /// An op with no sources and no destination.
    pub fn nullary(kind: OpKind) -> Self {
        DynOp {
            kind,
            srcs: SrcList::new(),
            dst: None,
        }
    }

    /// A stable single-line rendering (`LOAD 0x2140 [v3 v7] -> v9`) used
    /// by golden-trace snapshots; any change to this format invalidates
    /// committed snapshots, so extend it rather than reshuffling it.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = match self.kind {
            OpKind::Load { addr } => format!("LOAD 0x{addr:x}"),
            OpKind::Store { addr } => format!("STORE 0x{addr:x}"),
            OpKind::Fp { unit } => match unit {
                FpUnit::Arith => "FP".to_string(),
                FpUnit::Div => "FDIV".to_string(),
                FpUnit::Sqrt => "FSQRT".to_string(),
            },
            OpKind::Int => "INT".to_string(),
            OpKind::IntMul => "IMUL".to_string(),
            OpKind::Branch => "BR".to_string(),
            OpKind::Barrier { id } => format!("BARRIER #{id}"),
            OpKind::FlagSet { flag } => format!("FLAGSET {flag}"),
            OpKind::FlagWait { flag } => format!("FLAGWAIT {flag}"),
            OpKind::Prefetch { addr } => format!("PREFETCH 0x{addr:x}"),
            OpKind::Halt => "HALT".to_string(),
        };
        if !self.srcs.is_empty() {
            s.push_str(" [");
            for (k, v) in self.srcs.as_slice().iter().enumerate() {
                if k > 0 {
                    s.push(' ');
                }
                let _ = write!(s, "v{v}");
            }
            s.push(']');
        }
        if let Some(d) = self.dst {
            let _ = write!(s, " -> v{d}");
        }
        s
    }
}

/// Order-sensitive digest of a dynamic-op stream: per-kind counts plus an
/// FNV-1a hash over a stable encoding of every op (kind, address/id,
/// sources, destination). Two runs produce equal digests iff they fetched
/// the same ops with the same operands in the same order — the primitive
/// behind the golden-trace regression gates in `crates/difftest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest {
    /// Total ops absorbed (including `Halt`).
    pub ops: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// Floating-point ops (all unit classes).
    pub fp: u64,
    /// Integer ALU + multiply ops.
    pub int: u64,
    /// Branches.
    pub branches: u64,
    /// Barriers, flag sets and flag waits.
    pub sync: u64,
    /// Software prefetches.
    pub prefetches: u64,
    hash: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceDigest {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// An empty digest.
    pub fn new() -> Self {
        TraceDigest {
            ops: 0,
            loads: 0,
            stores: 0,
            fp: 0,
            int: 0,
            branches: 0,
            sync: 0,
            prefetches: 0,
            hash: Self::FNV_OFFSET,
        }
    }

    fn mix(&mut self, word: u64) {
        for b in word.to_le_bytes() {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(Self::FNV_PRIME);
        }
    }

    /// Folds one op into the digest.
    pub fn absorb(&mut self, op: &DynOp) {
        self.ops += 1;
        let (tag, payload): (u64, u64) = match op.kind {
            OpKind::Load { addr } => {
                self.loads += 1;
                (1, addr)
            }
            OpKind::Store { addr } => {
                self.stores += 1;
                (2, addr)
            }
            OpKind::Fp { unit } => {
                self.fp += 1;
                let u = match unit {
                    FpUnit::Arith => 0,
                    FpUnit::Div => 1,
                    FpUnit::Sqrt => 2,
                };
                (3, u)
            }
            OpKind::Int => {
                self.int += 1;
                (4, 0)
            }
            OpKind::IntMul => {
                self.int += 1;
                (5, 0)
            }
            OpKind::Branch => {
                self.branches += 1;
                (6, 0)
            }
            OpKind::Barrier { id } => {
                self.sync += 1;
                (7, id as u64)
            }
            OpKind::FlagSet { flag } => {
                self.sync += 1;
                (8, flag as u64)
            }
            OpKind::FlagWait { flag } => {
                self.sync += 1;
                (9, flag as u64)
            }
            OpKind::Prefetch { addr } => {
                self.prefetches += 1;
                (10, addr)
            }
            OpKind::Halt => (11, 0),
        };
        self.mix(tag);
        self.mix(payload);
        for &s in op.srcs.as_slice() {
            self.mix(s as u64);
        }
        self.mix(op.dst.map_or(u64::MAX, |d| d as u64));
    }

    /// The accumulated stream hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// A stable multi-line rendering for snapshot files.
    pub fn render(&self) -> String {
        format!(
            "ops {}\nloads {}\nstores {}\nfp {}\nint {}\nbranches {}\nsync {}\nprefetches {}\nstream-hash {:016x}",
            self.ops,
            self.loads,
            self.stores,
            self.fp,
            self.int,
            self.branches,
            self.sync,
            self.prefetches,
            self.hash,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srclist_dedups() {
        let mut s = SrcList::new();
        s.push(4);
        s.push(4);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn srclist_keeps_most_recent_when_full() {
        let mut s = SrcList::new();
        s.push(1);
        s.push(2);
        s.push(3);
        s.push(10); // evicts 1
        let mut v = s.as_slice().to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![2, 3, 10]);
        s.push(0); // older than everything: dropped
        let mut v = s.as_slice().to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![2, 3, 10]);
    }

    #[test]
    fn srclist_from_iter() {
        let s: SrcList = [7u32, 8, 7].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn fp_latencies_match_table1() {
        assert_eq!(FpUnit::Arith.base_latency(), 3);
        assert_eq!(FpUnit::Div.base_latency(), 16);
        assert_eq!(FpUnit::Sqrt.base_latency(), 33);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = DynOp::nullary(OpKind::Load { addr: 8 });
        let b = DynOp::nullary(OpKind::Store { addr: 8 });
        let mut ab = TraceDigest::new();
        ab.absorb(&a);
        ab.absorb(&b);
        let mut ba = TraceDigest::new();
        ba.absorb(&b);
        ba.absorb(&a);
        assert_eq!(ab.ops, 2);
        assert_eq!(ab.loads, 1);
        assert_eq!(ab.stores, 1);
        assert_ne!(ab.hash(), ba.hash(), "hash must see order");
        assert_eq!(ab, ab);
    }

    #[test]
    fn digest_sees_operands() {
        let plain = DynOp::nullary(OpKind::Int);
        let with_dst = DynOp {
            dst: Some(3),
            ..plain
        };
        let mut d1 = TraceDigest::new();
        d1.absorb(&plain);
        let mut d2 = TraceDigest::new();
        d2.absorb(&with_dst);
        assert_ne!(d1.hash(), d2.hash());
    }

    #[test]
    fn render_is_stable() {
        let op = DynOp {
            kind: OpKind::Load { addr: 0x2140 },
            srcs: [3u32, 7].into_iter().collect(),
            dst: Some(9),
        };
        assert_eq!(op.render(), "LOAD 0x2140 [v3 v7] -> v9");
        assert_eq!(DynOp::nullary(OpKind::Halt).render(), "HALT");
        let mut d = TraceDigest::new();
        d.absorb(&op);
        assert!(d.render().starts_with("ops 1\nloads 1\n"));
    }

    #[test]
    fn opkind_mem_helpers() {
        assert!(OpKind::Load { addr: 8 }.is_mem());
        assert_eq!(OpKind::Store { addr: 16 }.addr(), Some(16));
        assert_eq!(OpKind::Int.addr(), None);
        assert!(!OpKind::Barrier { id: 0 }.is_mem());
    }
}
