//! Execution-driven interpreter.
//!
//! The interpreter functionally executes a [`Program`] against a
//! [`SimMem`] while emitting the corresponding [`DynOp`] stream on demand.
//! It is organized as an explicit control-stack machine so that the
//! simulator can pull exactly one op at a time (execution-driven
//! simulation) without coroutines or threads.
//!
//! For multiprocessor runs, one `Interp` per processor shares the same
//! `SimMem`; loops with a [`Dist`](crate::Dist) annotation split their
//! iterations. Values are evaluated at *fetch* time, which is exact for
//! the data-race-free kernels in `mempar-workloads` (all trace-affecting
//! values — indices, chain pointers, trip counts — are either private or
//! synchronized).

use std::collections::VecDeque;

use crate::expr::{BinOp, Cond, Expr, UnOp};
use crate::mem::SimMem;
use crate::program::{ArrayRef, Bound, Dist, DynIndex, ElemType, Loop, Program, Stmt, VarId};
use crate::trace::{DynOp, FpUnit, OpKind, SrcList};

/// A dynamically-typed value (scalars, expression results).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Double-precision float.
    F(f64),
    /// 64-bit integer.
    I(i64),
}

impl Val {
    /// The value as a float (integers convert).
    pub fn as_f64(self) -> f64 {
        match self {
            Val::F(x) => x,
            Val::I(x) => x as f64,
        }
    }

    /// The value as an integer (floats truncate).
    pub fn as_i64(self) -> i64 {
        match self {
            Val::F(x) => x as i64,
            Val::I(x) => x,
        }
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u64 {
        match self {
            Val::F(x) => x.to_bits(),
            Val::I(x) => x as u64,
        }
    }

    /// Reconstructs from bits given the element type.
    pub fn from_bits(bits: u64, elem: ElemType) -> Val {
        match elem {
            ElemType::F64 => Val::F(f64::from_bits(bits)),
            ElemType::I64 => Val::I(bits as i64),
        }
    }
}

/// Summary counters from a functional run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Total dynamic ops.
    pub ops: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic FP operations.
    pub fp_ops: u64,
    /// Dynamic branches.
    pub branches: u64,
}

impl RunSummary {
    /// Tallies one dynamic op into the counters.
    pub(crate) fn count(&mut self, op: &DynOp) {
        self.ops += 1;
        match op.kind {
            OpKind::Load { .. } => self.loads += 1,
            OpKind::Store { .. } => self.stores += 1,
            OpKind::Fp { .. } => self.fp_ops += 1,
            OpKind::Branch => self.branches += 1,
            _ => {}
        }
    }
}

#[derive(Debug)]
enum Frame<'p> {
    Seq {
        stmts: &'p [Stmt],
        pos: usize,
    },
    LoopIter {
        lp: &'p Loop,
        /// Next iteration number (in 0..trip).
        k: i64,
        k_end: i64,
        k_stride: i64,
        /// First loop-variable value and per-iteration delta.
        var0: i64,
        var_step: i64,
        /// Vreg of the scalar upper bound, if any (branch dependence).
        bound_vreg: u32,
    },
}

/// The execution-driven interpreter for one simulated processor.
#[derive(Debug)]
pub struct Interp<'p> {
    prog: &'p Program,
    proc_id: usize,
    nprocs: usize,
    scalar_vals: Vec<u64>,
    scalar_vregs: Vec<u32>,
    var_vals: Vec<i64>,
    var_vregs: Vec<u32>,
    next_vreg: u32,
    buf: VecDeque<DynOp>,
    stack: Vec<Frame<'p>>,
    barriers_seen: u32,
    halted: bool,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter for processor `proc_id` of `nprocs`.
    ///
    /// # Panics
    /// Panics if `proc_id >= nprocs` or `nprocs == 0`.
    pub fn new(prog: &'p Program, proc_id: usize, nprocs: usize) -> Self {
        assert!(nprocs > 0 && proc_id < nprocs, "bad processor id");
        Interp {
            prog,
            proc_id,
            nprocs,
            scalar_vals: prog.scalars.iter().map(|s| s.init_bits).collect(),
            scalar_vregs: vec![0; prog.scalars.len()],
            var_vals: vec![0; prog.var_names.len()],
            var_vregs: vec![0; prog.var_names.len()],
            next_vreg: 1,
            buf: VecDeque::with_capacity(64),
            stack: vec![Frame::Seq {
                stmts: &prog.body,
                pos: 0,
            }],
            barriers_seen: 0,
            halted: false,
        }
    }

    /// The processor this interpreter runs as.
    pub fn proc_id(&self) -> usize {
        self.proc_id
    }

    /// Produces the next dynamic op, or `None` when the program has ended
    /// (after a final [`OpKind::Halt`] has been returned).
    pub fn next_op(&mut self, mem: &mut SimMem) -> Option<DynOp> {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return Some(op);
            }
            if self.halted {
                return None;
            }
            self.step(mem);
        }
    }

    /// Runs the program to completion without a timing model, returning
    /// summary counters. Useful for verification and miss-rate profiling.
    pub fn run_functional(&mut self, mem: &mut SimMem) -> RunSummary {
        let mut s = RunSummary::default();
        while let Some(op) = self.next_op(mem) {
            s.count(&op);
        }
        s
    }

    fn fresh(&mut self) -> u32 {
        let v = self.next_vreg;
        self.next_vreg += 1;
        v
    }

    fn emit(&mut self, kind: OpKind, srcs: SrcList, dst: Option<u32>) {
        self.buf.push_back(DynOp { kind, srcs, dst });
    }

    /// Advances the control machine until at least one op is buffered or
    /// the program halts.
    fn step(&mut self, mem: &mut SimMem) {
        let Some(top) = self.stack.last_mut() else {
            self.emit(OpKind::Halt, SrcList::new(), None);
            self.halted = true;
            return;
        };
        match top {
            Frame::Seq { stmts, pos } => {
                if *pos >= stmts.len() {
                    self.stack.pop();
                    return;
                }
                let stmt = &stmts[*pos];
                *pos += 1;
                self.exec_stmt(stmt, mem);
            }
            Frame::LoopIter {
                lp,
                k,
                k_end,
                k_stride,
                var0,
                var_step,
                bound_vreg,
            } => {
                if *k >= *k_end {
                    self.stack.pop();
                    return;
                }
                let lp = *lp;
                let var = lp.var;
                let value = *var0 + *k * *var_step;
                let bound_vreg = *bound_vreg;
                *k += *k_stride;
                self.begin_iteration(lp, var, value, bound_vreg);
            }
        }
    }

    /// Emits the per-iteration counter update and loop branch, sets the
    /// loop variable, and pushes the body.
    fn begin_iteration(&mut self, lp: &'p Loop, var: VarId, value: i64, bound_vreg: u32) {
        let prev = self.var_vregs[var.index()];
        let counter = self.fresh();
        let mut srcs = SrcList::new();
        if prev != 0 {
            srcs.push(prev);
        }
        self.emit(OpKind::Int, srcs, Some(counter));
        let mut bsrcs = SrcList::new();
        bsrcs.push(counter);
        if bound_vreg != 0 {
            bsrcs.push(bound_vreg);
        }
        self.emit(OpKind::Branch, bsrcs, None);
        self.var_vals[var.index()] = value;
        self.var_vregs[var.index()] = counter;
        self.stack.push(Frame::Seq {
            stmts: &lp.body,
            pos: 0,
        });
    }

    fn exec_stmt(&mut self, stmt: &'p Stmt, mem: &mut SimMem) {
        match stmt {
            Stmt::AssignArray { lhs, rhs } => {
                let (val, vreg) = self.eval(rhs, mem);
                let (addr, mut srcs) = self.resolve_ref(lhs, mem);
                if vreg != 0 {
                    srcs.push(vreg);
                }
                let elem = self.prog.array(lhs.array).elem;
                let coerced = match elem {
                    ElemType::F64 => Val::F(val.as_f64()),
                    ElemType::I64 => Val::I(val.as_i64()),
                };
                mem.store_bits(addr, coerced.to_bits());
                self.emit(OpKind::Store { addr }, srcs, None);
            }
            Stmt::AssignScalar { lhs, rhs } => {
                let (val, vreg) = self.eval(rhs, mem);
                let elem = self.prog.scalar(*lhs).elem;
                let coerced = match elem {
                    ElemType::F64 => Val::F(val.as_f64()),
                    ElemType::I64 => Val::I(val.as_i64()),
                };
                self.scalar_vals[lhs.index()] = coerced.to_bits();
                self.scalar_vregs[lhs.index()] = vreg;
            }
            Stmt::Loop(lp) => self.enter_loop(lp),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = self.eval_cond(cond);
                let branch = if taken { then_branch } else { else_branch };
                if !branch.is_empty() {
                    self.stack.push(Frame::Seq {
                        stmts: branch,
                        pos: 0,
                    });
                }
            }
            Stmt::Barrier => {
                let id = self.barriers_seen;
                self.barriers_seen += 1;
                self.emit(OpKind::Barrier { id }, SrcList::new(), None);
            }
            Stmt::FlagSet { idx } => {
                let flag = self.eval_affine(idx) as u32;
                self.emit(OpKind::FlagSet { flag }, SrcList::new(), None);
            }
            Stmt::FlagWait { idx } => {
                let flag = self.eval_affine(idx) as u32;
                self.emit(OpKind::FlagWait { flag }, SrcList::new(), None);
            }
            Stmt::Prefetch { target } => {
                let (addr, srcs) = self.resolve_ref_clamped(target, mem);
                self.emit(OpKind::Prefetch { addr }, srcs, None);
            }
        }
    }

    /// Like [`Interp::resolve_ref`] but clamps each dimension into the
    /// array's extent — software prefetches near loop bounds may run past
    /// the end and must not fault.
    fn resolve_ref_clamped(&mut self, r: &ArrayRef, mem: &mut SimMem) -> (u64, SrcList) {
        let decl = self.prog.array(r.array).clone();
        let mut srcs = SrcList::new();
        let mut flat: i64 = 0;
        for (d, ix) in r.indices.iter().enumerate() {
            let mut v = self.eval_affine(&ix.affine);
            for var in ix.affine.vars() {
                let reg = self.var_vregs[var.index()];
                if reg != 0 {
                    srcs.push(reg);
                }
            }
            match &ix.dynamic {
                None => {}
                Some(DynIndex::Scalar { scalar, scale }) => {
                    let sv = Val::from_bits(
                        self.scalar_vals[scalar.index()],
                        self.prog.scalar(*scalar).elem,
                    )
                    .as_i64();
                    v += sv * scale;
                    let reg = self.scalar_vregs[scalar.index()];
                    if reg != 0 {
                        srcs.push(reg);
                    }
                }
                Some(DynIndex::Indirect { inner, scale }) => {
                    // The index load feeding a prefetch address is part
                    // of the non-faulting prefetch: transforms shift it
                    // past the loop bounds too, so clamp its resolution
                    // like the target's own dimensions.
                    let (iaddr, isrcs) = self.resolve_ref_clamped(inner, mem);
                    let bits = mem.load_bits(iaddr);
                    let dst = self.fresh();
                    self.emit(OpKind::Load { addr: iaddr }, isrcs, Some(dst));
                    let iv = Val::from_bits(bits, self.prog.array(inner.array).elem);
                    v += iv.as_i64() * scale;
                    srcs.push(dst);
                }
            }
            let v = v.clamp(0, decl.dims[d] as i64 - 1);
            flat = flat * decl.dims[d] as i64 + v;
        }
        (mem.elem_addr(r.array, flat as u64), srcs)
    }

    fn eval_affine(&self, e: &crate::expr::AffineExpr) -> i64 {
        e.eval(|v| self.var_vals[v.index()])
    }

    fn affine_srcs(&self, e: &crate::expr::AffineExpr) -> SrcList {
        e.vars()
            .map(|v| self.var_vregs[v.index()])
            .filter(|&r| r != 0)
            .collect()
    }

    fn eval_cond(&mut self, cond: &Cond) -> bool {
        let taken = cond.eval(|v| self.var_vals[v.index()]);
        let cmp = self.fresh();
        let srcs = self.affine_srcs(&cond.lhs);
        self.emit(OpKind::Int, srcs, Some(cmp));
        let mut bsrcs = SrcList::new();
        bsrcs.push(cmp);
        self.emit(OpKind::Branch, bsrcs, None);
        taken
    }

    fn enter_loop(&mut self, lp: &'p Loop) {
        let (lo, lo_vreg) = self.resolve_bound(&lp.lo);
        let (hi, hi_vreg) = self.resolve_bound(&lp.hi);
        let bound_vreg = if hi_vreg != 0 { hi_vreg } else { lo_vreg };
        let step = lp.step;
        assert!(step != 0, "loop step must be nonzero");
        let span = (hi - lo).max(0);
        let astep = step.abs();
        let trip = (span + astep - 1) / astep;
        let (var0, var_step) = if step > 0 { (lo, step) } else { (hi - 1, step) };
        let (k0, k_end, k_stride) = match (lp.dist, self.nprocs) {
            (None, _) | (_, 1) => (0i64, trip, 1i64),
            (Some(Dist::Block), n) => {
                let n = n as i64;
                let chunk = (trip + n - 1) / n;
                let start = (self.proc_id as i64) * chunk;
                (
                    start.min(trip),
                    ((start + chunk).min(trip)).max(start.min(trip)),
                    1,
                )
            }
            (Some(Dist::Cyclic), n) => (self.proc_id as i64, trip, n as i64),
        };
        if k0 >= k_end {
            // Still emit the (not-taken) loop-entry branch for realism.
            let cmp = self.fresh();
            self.emit(OpKind::Int, SrcList::new(), Some(cmp));
            let mut b = SrcList::new();
            b.push(cmp);
            self.emit(OpKind::Branch, b, None);
            return;
        }
        self.stack.push(Frame::LoopIter {
            lp,
            k: k0,
            k_end,
            k_stride,
            var0,
            var_step,
            bound_vreg,
        });
    }

    fn resolve_bound(&mut self, b: &Bound) -> (i64, u32) {
        match b {
            Bound::Const(c) => (*c, 0),
            Bound::Affine(e) => (self.eval_affine(e), 0),
            Bound::Scalar(s) => (
                Val::from_bits(self.scalar_vals[s.index()], self.prog.scalar(*s).elem).as_i64(),
                self.scalar_vregs[s.index()],
            ),
        }
    }

    /// Computes the address of `r`, emitting loads for indirect index
    /// components, and returns the address plus its dependence sources.
    fn resolve_ref(&mut self, r: &ArrayRef, mem: &mut SimMem) -> (u64, SrcList) {
        let decl = self.prog.array(r.array);
        debug_assert_eq!(
            decl.dims.len(),
            r.indices.len(),
            "rank mismatch on array {}",
            decl.name
        );
        let mut srcs = SrcList::new();
        let mut flat: i64 = 0;
        // Row-major accumulation without allocating the strides vector.
        for (d, ix) in r.indices.iter().enumerate() {
            let mut v = self.eval_affine(&ix.affine);
            for var in ix.affine.vars() {
                let reg = self.var_vregs[var.index()];
                if reg != 0 {
                    srcs.push(reg);
                }
            }
            match &ix.dynamic {
                None => {}
                Some(DynIndex::Scalar { scalar, scale }) => {
                    let sv = Val::from_bits(
                        self.scalar_vals[scalar.index()],
                        self.prog.scalar(*scalar).elem,
                    )
                    .as_i64();
                    v += sv * scale;
                    let reg = self.scalar_vregs[scalar.index()];
                    if reg != 0 {
                        srcs.push(reg);
                    }
                }
                Some(DynIndex::Indirect { inner, scale }) => {
                    let (iv, ireg) = self.load_ref(inner, mem);
                    v += iv.as_i64() * scale;
                    srcs.push(ireg);
                }
            }
            debug_assert!(
                v >= 0 && (v as usize) < decl.dims[d],
                "index {v} out of bounds in dim {d} of array {} (extent {})",
                decl.name,
                decl.dims[d]
            );
            flat = flat * decl.dims[d] as i64 + v;
        }
        assert!(
            flat >= 0 && (flat as usize) < decl.len(),
            "flattened index {flat} out of bounds for array {} (len {})",
            decl.name,
            decl.len()
        );
        (mem.elem_addr(r.array, flat as u64), srcs)
    }

    /// Emits the load for `r` and returns its value and destination vreg.
    fn load_ref(&mut self, r: &ArrayRef, mem: &mut SimMem) -> (Val, u32) {
        let (addr, srcs) = self.resolve_ref(r, mem);
        let bits = mem.load_bits(addr);
        let dst = self.fresh();
        self.emit(OpKind::Load { addr }, srcs, Some(dst));
        (Val::from_bits(bits, self.prog.array(r.array).elem), dst)
    }

    /// Evaluates an expression, emitting its ops; returns value and vreg
    /// (0 when the value needs no producing op, e.g. constants).
    fn eval(&mut self, e: &Expr, mem: &mut SimMem) -> (Val, u32) {
        match e {
            Expr::ConstF(x) => (Val::F(*x), 0),
            Expr::ConstI(x) => (Val::I(*x), 0),
            Expr::LoopVar(v) => (Val::I(self.var_vals[v.index()]), self.var_vregs[v.index()]),
            Expr::Scalar(s) => (
                Val::from_bits(self.scalar_vals[s.index()], self.prog.scalar(*s).elem),
                self.scalar_vregs[s.index()],
            ),
            Expr::Load(r) => self.load_ref(r, mem),
            Expr::Unary(op, a) => {
                let (av, areg) = self.eval(a, mem);
                let (val, kind) = match (op, av) {
                    (UnOp::Neg, Val::F(x)) => (
                        Val::F(-x),
                        OpKind::Fp {
                            unit: FpUnit::Arith,
                        },
                    ),
                    (UnOp::Neg, Val::I(x)) => (Val::I(-x), OpKind::Int),
                    (UnOp::Abs, Val::F(x)) => (
                        Val::F(x.abs()),
                        OpKind::Fp {
                            unit: FpUnit::Arith,
                        },
                    ),
                    (UnOp::Abs, Val::I(x)) => (Val::I(x.abs()), OpKind::Int),
                    (UnOp::Sqrt, v) => {
                        (Val::F(v.as_f64().sqrt()), OpKind::Fp { unit: FpUnit::Sqrt })
                    }
                };
                let dst = self.fresh();
                let mut srcs = SrcList::new();
                if areg != 0 {
                    srcs.push(areg);
                }
                self.emit(kind, srcs, Some(dst));
                (val, dst)
            }
            Expr::Binary(op, a, b) => {
                let (av, areg) = self.eval(a, mem);
                let (bv, breg) = self.eval(b, mem);
                let float = matches!(av, Val::F(_)) || matches!(bv, Val::F(_));
                let val = if float {
                    let (x, y) = (av.as_f64(), bv.as_f64());
                    Val::F(match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                    })
                } else {
                    let (x, y) = (av.as_i64(), bv.as_i64());
                    Val::I(match op {
                        BinOp::Add => x.wrapping_add(y),
                        BinOp::Sub => x.wrapping_sub(y),
                        BinOp::Mul => x.wrapping_mul(y),
                        BinOp::Div => {
                            if y == 0 {
                                0
                            } else {
                                x / y
                            }
                        }
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                    })
                };
                let kind = match (float, op) {
                    (true, BinOp::Div) => OpKind::Fp { unit: FpUnit::Div },
                    (true, _) => OpKind::Fp {
                        unit: FpUnit::Arith,
                    },
                    (false, BinOp::Mul) | (false, BinOp::Div) => OpKind::IntMul,
                    (false, _) => OpKind::Int,
                };
                let dst = self.fresh();
                let mut srcs = SrcList::new();
                if areg != 0 {
                    srcs.push(areg);
                }
                if breg != 0 {
                    srcs.push(breg);
                }
                self.emit(kind, srcs, Some(dst));
                (val, dst)
            }
        }
    }
}

/// Runs `prog` to completion on a single processor and returns the final
/// memory image together with counters. Convenience for tests.
pub fn run_single(prog: &Program, mem: &mut SimMem) -> RunSummary {
    let mut interp = Interp::new(prog, 0, 1);
    interp.run_functional(mem)
}

/// Runs `prog` functionally with `nprocs` processors, interleaving ops
/// round-robin while honoring barriers and flag synchronization: a
/// processor that reaches a barrier stops consuming ops until every
/// processor has arrived; a flag wait stalls until some processor has
/// executed the matching flag set.
///
/// # Panics
/// Panics when synchronization deadlocks (a flag waited on but never
/// set).
pub fn run_parallel_functional(prog: &Program, mem: &mut SimMem, nprocs: usize) -> RunSummary {
    crate::vm::run_parallel_functional_with(prog, mem, nprocs, crate::vm::Engine::Interp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::mem::ArrayData;
    use crate::program::Index;

    /// sum += a[j][i] over a 4x8 matrix of ones.
    fn sum_program() -> (Program, crate::program::ArrayId, crate::program::ScalarId) {
        let mut b = ProgramBuilder::new("sum");
        let a = b.array_f64("a", &[4, 8]);
        let s = b.scalar_f64("sum", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 4, |b| {
            b.for_const(i, 0, 8, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let add = b.add(acc, v);
                b.assign_scalar(s, add);
            });
        });
        (b.finish(), a, s)
    }

    #[test]
    fn sums_and_counts() {
        let (p, a, _s) = sum_program();
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(a, ArrayData::f64_fill(32, 2.0));
        let sum = run_single(&p, &mut mem);
        assert_eq!(sum.loads, 32);
        assert_eq!(sum.fp_ops, 32);
        // 4 outer iters * (1 int + 1 branch) + 32 inner * 2 ... plus entry.
        assert!(sum.branches >= 36);
    }

    #[test]
    fn scalar_accumulation_value() {
        let mut b = ProgramBuilder::new("acc");
        let a = b.array_f64("a", &[8]);
        let out = b.array_f64("out", &[1]);
        let s = b.scalar_f64("sum", 1.0);
        let i = b.var("i");
        b.for_const(i, 0, 8, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let acc = b.scalar(s);
            let add = b.add(acc, v);
            b.assign_scalar(s, add);
        });
        let sv = b.scalar(s);
        b.assign_array(out, &[Index::affine(0)], sv);
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(a, ArrayData::F64((1..=8).map(|x| x as f64).collect()));
        run_single(&p, &mut mem);
        assert_eq!(mem.read_f64(out)[0], 37.0); // 1 + 36
    }

    #[test]
    fn store_writes_memory() {
        let mut b = ProgramBuilder::new("copy");
        let a = b.array_f64("a", &[16]);
        let c = b.array_f64("c", &[16]);
        let i = b.var("i");
        b.for_const(i, 0, 16, |b| {
            let v = b.load(a, &[b.idx(i)]);
            let two = b.constf(2.0);
            let m = b.mul(v, two);
            b.assign_array(c, &[Index::affine(crate::AffineExpr::var(i))], m);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(a, ArrayData::F64((0..16).map(|x| x as f64).collect()));
        run_single(&p, &mut mem);
        let out = mem.read_f64(c);
        assert_eq!(out[5], 10.0);
        assert_eq!(out[15], 30.0);
    }

    #[test]
    fn indirect_index_loads_value() {
        // c[i] = data[ind[i]]
        let mut b = ProgramBuilder::new("gather");
        let ind = b.array_i64("ind", &[4]);
        let data = b.array_f64("data", &[10]);
        let c = b.array_f64("c", &[4]);
        let i = b.var("i");
        b.for_const(i, 0, 4, |b| {
            let inner = ArrayRef::new(ind, vec![Index::affine(crate::AffineExpr::var(i))]);
            let v = b.load_ref(ArrayRef::new(data, vec![Index::indirect(inner)]));
            b.assign_array(c, &[Index::affine(crate::AffineExpr::var(i))], v);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(ind, ArrayData::I64(vec![9, 0, 3, 3]));
        mem.set_array(
            data,
            ArrayData::F64((0..10).map(|x| x as f64 * 10.0).collect()),
        );
        let sum = run_single(&p, &mut mem);
        assert_eq!(mem.read_f64(c), vec![90.0, 0.0, 30.0, 30.0]);
        assert_eq!(sum.loads, 8); // one index + one data load per iteration
    }

    #[test]
    fn pointer_chase_serializes_through_scalar() {
        // p = next[p] four times; deps must chain through the scalar vreg.
        let mut b = ProgramBuilder::new("chase");
        let next = b.array_i64("next", &[8]);
        let p_s = b.scalar_i64("p", 0);
        let i = b.var("i");
        b.for_const(i, 0, 4, |b| {
            let v = b.load_ref(ArrayRef::new(next, vec![Index::scalar(p_s)]));
            b.assign_scalar(p_s, v);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(next, ArrayData::I64(vec![3, 0, 1, 5, 2, 7, 4, 6]));
        let mut interp = Interp::new(&p, 0, 1);
        let mut loads = Vec::new();
        let mut last_load_dst: Option<u32> = None;
        while let Some(op) = interp.next_op(&mut mem) {
            if let OpKind::Load { addr } = op.kind {
                if let Some(prev) = last_load_dst {
                    assert!(
                        op.srcs.as_slice().contains(&prev),
                        "chase load must depend on previous load"
                    );
                }
                last_load_dst = op.dst;
                loads.push(addr);
            }
        }
        assert_eq!(loads.len(), 4);
        // Chain 0 -> 3 -> 5 -> 7.
        let base = mem.base(next);
        assert_eq!(loads, vec![base, base + 24, base + 40, base + 56]);
    }

    #[test]
    fn guard_branches_taken_correctly() {
        let mut b = ProgramBuilder::new("guard");
        let c = b.array_f64("c", &[8]);
        let i = b.var("i");
        b.for_const(i, 0, 8, |b| {
            let cond = Cond::lt(crate::AffineExpr::var(i), crate::AffineExpr::konst(3));
            b.if_then(cond, |b| {
                let one = b.constf(1.0);
                b.assign_array(c, &[Index::affine(crate::AffineExpr::var(i))], one);
            });
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        run_single(&p, &mut mem);
        let out = mem.read_f64(c);
        assert_eq!(&out[..4], &[1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn block_distribution_partitions_iterations() {
        let mut b = ProgramBuilder::new("par");
        let c = b.array_f64("c", &[16]);
        let i = b.var("i");
        b.for_dist(i, 0, 16, Dist::Block, |b| {
            let one = b.constf(1.0);
            b.assign_array(c, &[Index::affine(crate::AffineExpr::var(i))], one);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 4);
        // Run only processor 1: exactly elements 4..8 get written.
        let mut interp = Interp::new(&p, 1, 4);
        interp.run_functional(&mut mem);
        let out = mem.read_f64(c);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, if (4..8).contains(&i) { 1.0 } else { 0.0 }, "index {i}");
        }
    }

    #[test]
    fn cyclic_distribution_strides() {
        let mut b = ProgramBuilder::new("parc");
        let c = b.array_f64("c", &[8]);
        let i = b.var("i");
        b.for_dist(i, 0, 8, Dist::Cyclic, |b| {
            let one = b.constf(1.0);
            b.assign_array(c, &[Index::affine(crate::AffineExpr::var(i))], one);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 2);
        let mut interp = Interp::new(&p, 1, 2);
        interp.run_functional(&mut mem);
        let out = mem.read_f64(c);
        assert_eq!(out, vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn all_procs_cover_everything() {
        let mut b = ProgramBuilder::new("cover");
        let c = b.array_f64("c", &[13]);
        let i = b.var("i");
        b.for_dist(i, 0, 13, Dist::Block, |b| {
            let one = b.constf(1.0);
            b.assign_array(c, &[Index::affine(crate::AffineExpr::var(i))], one);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 4);
        run_parallel_functional(&p, &mut mem, 4);
        assert!(mem.read_f64(c).iter().all(|&v| v == 1.0));
    }

    #[test]
    fn negative_step_runs_backward() {
        let mut b = ProgramBuilder::new("back");
        let c = b.array_f64("c", &[4]);
        let pos = b.scalar_f64("pos", 0.0);
        let i = b.var("i");
        b.for_step(i, 0, 4, -1, |b| {
            // c[i] = pos; pos += 1  => c[3]=0, c[2]=1, ...
            let cur = b.scalar(pos);
            b.assign_array(c, &[Index::affine(crate::AffineExpr::var(i))], cur.clone());
            let one = b.constf(1.0);
            let next = b.add(cur, one);
            b.assign_scalar(pos, next);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        run_single(&p, &mut mem);
        assert_eq!(mem.read_f64(c), vec![3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn barrier_ids_sequence() {
        let mut b = ProgramBuilder::new("barriers");
        b.barrier();
        b.barrier();
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        let mut interp = Interp::new(&p, 0, 1);
        let mut ids = Vec::new();
        while let Some(op) = interp.next_op(&mut mem) {
            if let OpKind::Barrier { id } = op.kind {
                ids.push(id);
            }
        }
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn scalar_bound_loop() {
        let mut b = ProgramBuilder::new("dynbound");
        let c = b.array_f64("c", &[8]);
        let n = b.scalar_i64("n", 5);
        let i = b.var("i");
        b.for_scalar(i, 0, n, |b| {
            let one = b.constf(1.0);
            b.assign_array(c, &[Index::affine(crate::AffineExpr::var(i))], one);
        });
        let p = b.finish();
        let mut mem = SimMem::new(&p, 1);
        run_single(&p, &mut mem);
        assert_eq!(mem.read_f64(c).iter().filter(|&&v| v == 1.0).count(), 5);
    }

    #[test]
    fn halt_is_final_op() {
        let (p, _a, _s) = sum_program();
        let mut mem = SimMem::new(&p, 1);
        let mut interp = Interp::new(&p, 0, 1);
        let mut last = None;
        while let Some(op) = interp.next_op(&mut mem) {
            last = Some(op.kind);
        }
        assert_eq!(last, Some(OpKind::Halt));
        assert!(interp.next_op(&mut mem).is_none());
    }
}
