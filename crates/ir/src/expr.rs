//! Affine index expressions, arithmetic expressions and conditions.

use crate::program::{ArrayRef, ScalarId, VarId};

/// An affine expression over loop variables: `sum(coeff_k * var_k) + konst`.
///
/// Affine expressions are used for loop bounds, array indices, guard
/// conditions and flag indices. They are the currency of dependence
/// analysis: two affine indices can be compared symbolically.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// `(variable, coefficient)` terms, kept sorted by variable and free of
    /// zero coefficients (a normal form, so `Eq`/`Hash` behave well).
    coeffs: Vec<(VarId, i64)>,
    /// The constant term.
    konst: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn konst(c: i64) -> Self {
        AffineExpr {
            coeffs: Vec::new(),
            konst: c,
        }
    }

    /// The expression `v` (a bare loop variable).
    pub fn var(v: VarId) -> Self {
        AffineExpr {
            coeffs: vec![(v, 1)],
            konst: 0,
        }
    }

    /// The expression `scale * v + offset`.
    pub fn scaled_var(v: VarId, scale: i64, offset: i64) -> Self {
        let mut e = AffineExpr {
            coeffs: vec![(v, scale)],
            konst: offset,
        };
        e.normalize();
        e
    }

    fn normalize(&mut self) {
        self.coeffs.sort_by_key(|&(v, _)| v);
        self.coeffs.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 += later.1;
                true
            } else {
                false
            }
        });
        self.coeffs.retain(|&(_, c)| c != 0);
    }

    /// The constant term of the expression.
    pub fn constant_term(&self) -> i64 {
        self.konst
    }

    /// The coefficient of variable `v` (0 when absent).
    pub fn coeff(&self, v: VarId) -> i64 {
        self.coeffs
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// Iterator over the `(variable, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, i64)> + '_ {
        self.coeffs.iter().copied()
    }

    /// True when the expression is a plain constant.
    pub fn is_const(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Returns the constant value if [`AffineExpr::is_const`].
    pub fn as_const(&self) -> Option<i64> {
        if self.is_const() {
            Some(self.konst)
        } else {
            None
        }
    }

    /// Sum of two affine expressions.
    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        let mut e = self.clone();
        e.konst += other.konst;
        e.coeffs.extend(other.coeffs.iter().copied());
        e.normalize();
        e
    }

    /// Difference `self - other`.
    pub fn sub(&self, other: &AffineExpr) -> AffineExpr {
        self.add(&other.scale(-1))
    }

    /// The expression multiplied by a constant.
    pub fn scale(&self, k: i64) -> AffineExpr {
        let mut e = AffineExpr {
            coeffs: self.coeffs.iter().map(|&(v, c)| (v, c * k)).collect(),
            konst: self.konst * k,
        };
        e.normalize();
        e
    }

    /// The expression plus a constant.
    pub fn offset(&self, k: i64) -> AffineExpr {
        let mut e = self.clone();
        e.konst += k;
        e
    }

    /// Substitutes `v := replacement` and returns the result.
    ///
    /// Used by the loop transformations: unrolling substitutes
    /// `j := j + k*step`, strip-mining substitutes `j := jj + j_inner`.
    pub fn subst(&self, v: VarId, replacement: &AffineExpr) -> AffineExpr {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut rest = self.clone();
        rest.coeffs.retain(|&(w, _)| w != v);
        rest.add(&replacement.scale(c))
    }

    /// Evaluates the expression with `lookup` supplying variable values.
    pub fn eval(&self, mut lookup: impl FnMut(VarId) -> i64) -> i64 {
        self.konst + self.coeffs.iter().map(|&(v, c)| c * lookup(v)).sum::<i64>()
    }

    /// Variables referenced (with nonzero coefficient).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.coeffs.iter().map(|&(v, _)| v)
    }

    /// True when the expression does not mention `v`.
    pub fn is_free_of(&self, v: VarId) -> bool {
        self.coeff(v) == 0
    }
}

impl From<i64> for AffineExpr {
    fn from(c: i64) -> Self {
        AffineExpr::konst(c)
    }
}

impl From<VarId> for AffineExpr {
    fn from(v: VarId) -> Self {
        AffineExpr::var(v)
    }
}

/// Binary arithmetic operators.
///
/// The distinction matters to the simulator: different operators map to
/// different functional units and latencies (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum (used for jamming variable-length loops).
    Min,
    /// Maximum.
    Max,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Square root (33-cycle FP unit in the base configuration).
    Sqrt,
    /// Absolute value.
    Abs,
}

/// An arithmetic expression tree (the right-hand side of assignments).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A floating-point constant.
    ConstF(f64),
    /// An integer constant.
    ConstI(i64),
    /// Load from an array element.
    Load(ArrayRef),
    /// Read a (register-allocated) scalar.
    Scalar(ScalarId),
    /// Current value of a loop variable (an integer).
    LoopVar(VarId),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Convenience constructor for a unary node.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Unary(op, Box::new(a))
    }

    /// Visits every [`ArrayRef`] in the expression, in evaluation order.
    pub fn visit_refs<'a>(&'a self, f: &mut impl FnMut(&'a ArrayRef)) {
        match self {
            Expr::Load(r) => {
                r.visit_inner_refs(f);
                f(r);
            }
            Expr::Unary(_, a) => a.visit_refs(f),
            Expr::Binary(_, a, b) => {
                a.visit_refs(f);
                b.visit_refs(f);
            }
            _ => {}
        }
    }

    /// Counts FP arithmetic operations in the expression.
    pub fn fp_op_count(&self) -> usize {
        match self {
            Expr::Unary(_, a) => 1 + a.fp_op_count(),
            Expr::Binary(_, a, b) => 1 + a.fp_op_count() + b.fp_op_count(),
            _ => 0,
        }
    }
}

/// Comparison operators for guard conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `lhs < 0`
    Lt,
    /// `lhs <= 0`
    Le,
    /// `lhs > 0`
    Gt,
    /// `lhs >= 0`
    Ge,
    /// `lhs == 0`
    Eq,
    /// `lhs != 0`
    Ne,
}

/// A guard condition `affine(loop vars) OP 0`.
///
/// Conditions produced by the transformations (postludes, boundary guards)
/// are always affine in the loop variables, which keeps them analyzable.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Left-hand side, compared against zero.
    pub lhs: AffineExpr,
    /// The comparison operator.
    pub op: CmpOp,
}

impl Cond {
    /// The condition `lhs OP 0`.
    pub fn new(lhs: AffineExpr, op: CmpOp) -> Self {
        Cond { lhs, op }
    }

    /// Condition `a < b` as `a - b < 0`.
    pub fn lt(a: AffineExpr, b: AffineExpr) -> Self {
        Cond::new(a.sub(&b), CmpOp::Lt)
    }

    /// Condition `a >= b` as `a - b >= 0`.
    pub fn ge(a: AffineExpr, b: AffineExpr) -> Self {
        Cond::new(a.sub(&b), CmpOp::Ge)
    }

    /// Evaluates the condition.
    pub fn eval(&self, lookup: impl FnMut(VarId) -> i64) -> bool {
        let v = self.lhs.eval(lookup);
        match self.op {
            CmpOp::Lt => v < 0,
            CmpOp::Le => v <= 0,
            CmpOp::Gt => v > 0,
            CmpOp::Ge => v >= 0,
            CmpOp::Eq => v == 0,
            CmpOp::Ne => v != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> VarId {
        VarId::from_raw(n)
    }

    #[test]
    fn affine_normal_form() {
        let a = AffineExpr::var(v(1)).add(&AffineExpr::var(v(0)));
        let b = AffineExpr::var(v(0)).add(&AffineExpr::var(v(1)));
        assert_eq!(a, b);
    }

    #[test]
    fn affine_zero_coeffs_removed() {
        let a = AffineExpr::var(v(0)).sub(&AffineExpr::var(v(0)));
        assert!(a.is_const());
        assert_eq!(a.as_const(), Some(0));
    }

    #[test]
    fn affine_arith() {
        let e = AffineExpr::scaled_var(v(0), 2, 3); // 2i + 3
        assert_eq!(e.coeff(v(0)), 2);
        assert_eq!(e.constant_term(), 3);
        let e2 = e.scale(3); // 6i + 9
        assert_eq!(e2.coeff(v(0)), 6);
        assert_eq!(e2.constant_term(), 9);
        assert_eq!(e2.eval(|_| 5), 39);
    }

    #[test]
    fn affine_subst_unroll() {
        // j + 1 with j := j + 4 gives j + 5  (unroll copy 4 of distance-1 ref)
        let e = AffineExpr::var(v(0)).offset(1);
        let r = AffineExpr::var(v(0)).offset(4);
        let s = e.subst(v(0), &r);
        assert_eq!(s.coeff(v(0)), 1);
        assert_eq!(s.constant_term(), 5);
    }

    #[test]
    fn affine_subst_strip_mine() {
        // 2j with j := jj + ji gives 2jj + 2ji
        let e = AffineExpr::scaled_var(v(0), 2, 0);
        let r = AffineExpr::var(v(1)).add(&AffineExpr::var(v(2)));
        let s = e.subst(v(0), &r);
        assert_eq!(s.coeff(v(1)), 2);
        assert_eq!(s.coeff(v(2)), 2);
        assert_eq!(s.coeff(v(0)), 0);
    }

    #[test]
    fn affine_subst_absent_var_is_identity() {
        let e = AffineExpr::var(v(0)).offset(7);
        let s = e.subst(v(9), &AffineExpr::konst(100));
        assert_eq!(s, e);
    }

    #[test]
    fn cond_eval() {
        // i - 10 < 0  i.e. i < 10
        let c = Cond::lt(AffineExpr::var(v(0)), AffineExpr::konst(10));
        assert!(c.eval(|_| 9));
        assert!(!c.eval(|_| 10));
        let g = Cond::ge(AffineExpr::var(v(0)), AffineExpr::konst(10));
        assert!(g.eval(|_| 10));
        assert!(!g.eval(|_| 9));
    }

    #[test]
    fn expr_fp_count() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::ConstF(1.0), Expr::ConstF(2.0)),
            Expr::ConstF(3.0),
        );
        assert_eq!(e.fp_op_count(), 2);
    }
}
