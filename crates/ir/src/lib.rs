//! Loop-nest intermediate representation for the `mempar` reproduction of
//! Pai & Adve, *Code Transformations to Improve Memory Parallelism*
//! (MICRO-32, 1999).
//!
//! This crate provides the program representation that the rest of the
//! workspace is built around:
//!
//! * [`Program`] — a collection of array/scalar declarations and a body of
//!   (possibly nested, possibly parallel) loops, with affine, indirect and
//!   pointer-chase index expressions. This is the representation the
//!   analysis (`mempar-analysis`) and transformation (`mempar-transform`)
//!   crates operate on.
//! * [`SimMem`] — a flat simulated address space in which the program's
//!   arrays are laid out, with configurable NUMA home-node policies.
//! * [`DynOp`] — dynamic instructions (loads, stores, FP/integer ops,
//!   branches, synchronization) with register dependences, produced by the
//!   interpreter and consumed by the cycle-level simulator in `mempar-sim`.
//! * [`Interp`] — a pull-based, execution-driven interpreter: each call to
//!   [`Interp::next_op`] functionally executes a little more of the program
//!   and returns the next dynamic instruction.
//!
//! # Example
//!
//! Build the paper's Figure 2(a) base matrix traversal and run it:
//!
//! ```
//! use mempar_ir::{ProgramBuilder, Interp, SimMem, ArrayData};
//!
//! let mut b = ProgramBuilder::new("fig2a");
//! let a = b.array_f64("a", &[64, 64]);
//! let s = b.scalar_f64("sum", 0.0);
//! let j = b.var("j");
//! let i = b.var("i");
//! b.for_const(j, 0, 64, |b| {
//!     b.for_const(i, 0, 64, |b| {
//!         let v = b.load(a, &[b.idx(j), b.idx(i)]);
//!         let acc = b.scalar(s);
//!         let sum = b.add(acc, v);
//!         b.assign_scalar(s, sum);
//!     });
//! });
//! let prog = b.finish();
//! let mut mem = SimMem::new(&prog, 1);
//! mem.set_array(a, ArrayData::f64_fill(64 * 64, 1.0));
//! let mut interp = Interp::new(&prog, 0, 1);
//! let mut n = 0usize;
//! while interp.next_op(&mut mem).is_some() { n += 1; }
//! assert!(n > 64 * 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod bytecode;
mod expr;
mod interp;
mod mem;
mod pretty;
mod program;
mod trace;
mod validate;
mod vm;

pub use builder::ProgramBuilder;
pub use bytecode::BytecodeProgram;
pub use expr::{AffineExpr, BinOp, CmpOp, Cond, Expr, UnOp};
pub use interp::{run_parallel_functional, run_single, Interp, RunSummary, Val};
pub use mem::{ArrayData, HomeMap, HomePolicy, SimMem, PAGE_BYTES};
pub use program::{
    ArrayDecl, ArrayId, ArrayRef, Bound, Dist, DynIndex, ElemType, Index, Loop, Program,
    ScalarDecl, ScalarId, Stmt, VarId,
};
pub use trace::{DynOp, FpUnit, OpKind, SrcList, TraceDigest, MAX_SRCS};
pub use validate::ValidateError;
pub use vm::{run_parallel_functional_with, run_single_with, Engine, Executor, Vm};
