//! Pretty-printing of programs as C-like pseudocode (the notation the
//! paper's Figure 2 uses). Useful for debugging transformations and for
//! the examples.

use std::fmt::{self, Write as _};

use crate::expr::{AffineExpr, BinOp, CmpOp, Expr, UnOp};
use crate::program::{ArrayRef, Bound, DynIndex, Loop, Program, Stmt};

impl Program {
    /// Renders the program as indented pseudocode.
    pub fn to_pseudocode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "// program {}", self.name);
        for s in &self.body {
            self.fmt_stmt(&mut out, s, 0);
        }
        out
    }

    fn fmt_stmt(&self, out: &mut String, s: &Stmt, depth: usize) {
        let pad = "  ".repeat(depth);
        match s {
            Stmt::AssignArray { lhs, rhs } => {
                let _ = writeln!(out, "{pad}{} = {};", self.fmt_ref(lhs), self.fmt_expr(rhs));
            }
            Stmt::AssignScalar { lhs, rhs } => {
                let _ = writeln!(
                    out,
                    "{pad}{} = {};",
                    self.scalar(*lhs).name,
                    self.fmt_expr(rhs)
                );
            }
            Stmt::Loop(l) => {
                let _ = writeln!(out, "{pad}{} {{", self.fmt_loop_header(l));
                for inner in &l.body {
                    self.fmt_stmt(out, inner, depth + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let op = match cond.op {
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                };
                let _ = writeln!(out, "{pad}if ({} {op} 0) {{", self.fmt_affine(&cond.lhs));
                for inner in then_branch {
                    self.fmt_stmt(out, inner, depth + 1);
                }
                if !else_branch.is_empty() {
                    let _ = writeln!(out, "{pad}}} else {{");
                    for inner in else_branch {
                        self.fmt_stmt(out, inner, depth + 1);
                    }
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Barrier => {
                let _ = writeln!(out, "{pad}BARRIER();");
            }
            Stmt::FlagSet { idx } => {
                let _ = writeln!(out, "{pad}FLAG_SET({});", self.fmt_affine(idx));
            }
            Stmt::FlagWait { idx } => {
                let _ = writeln!(out, "{pad}FLAG_WAIT({});", self.fmt_affine(idx));
            }
            Stmt::Prefetch { target } => {
                let _ = writeln!(out, "{pad}PREFETCH({});", self.fmt_ref(target));
            }
        }
    }

    fn fmt_loop_header(&self, l: &Loop) -> String {
        let var = self.var_name(l.var);
        let dist = match l.dist {
            Some(crate::program::Dist::Block) => "forall_block ",
            Some(crate::program::Dist::Cyclic) => "forall_cyclic ",
            None => "for ",
        };
        let step = if l.step == 1 {
            format!("{var}++")
        } else if l.step == -1 {
            format!("{var}--")
        } else {
            format!("{var} += {}", l.step)
        };
        format!(
            "{dist}({var} = {}; {var} < {}; {step})",
            self.fmt_bound(&l.lo),
            self.fmt_bound(&l.hi)
        )
    }

    fn fmt_bound(&self, b: &Bound) -> String {
        match b {
            Bound::Const(c) => c.to_string(),
            Bound::Affine(e) => self.fmt_affine(e),
            Bound::Scalar(s) => self.scalar(*s).name.clone(),
        }
    }

    fn fmt_affine(&self, e: &AffineExpr) -> String {
        let mut parts = Vec::new();
        for (v, c) in e.terms() {
            let name = self.var_name(v);
            parts.push(match c {
                1 => name.to_string(),
                -1 => format!("-{name}"),
                _ => format!("{c}*{name}"),
            });
        }
        if e.constant_term() != 0 || parts.is_empty() {
            parts.push(e.constant_term().to_string());
        }
        parts.join(" + ").replace("+ -", "- ")
    }

    fn fmt_ref(&self, r: &ArrayRef) -> String {
        let mut s = self.array(r.array).name.clone();
        let _ = write!(s, "[");
        for (d, ix) in r.indices.iter().enumerate() {
            if d > 0 {
                let _ = write!(s, ",");
            }
            let mut term = String::new();
            if !ix.affine.is_const() || ix.affine.constant_term() != 0 || ix.dynamic.is_none() {
                term.push_str(&self.fmt_affine(&ix.affine));
            }
            if let Some(dy) = &ix.dynamic {
                let dstr = match dy {
                    DynIndex::Scalar { scalar, scale } => {
                        let n = &self.scalar(*scalar).name;
                        if *scale == 1 {
                            n.clone()
                        } else {
                            format!("{scale}*{n}")
                        }
                    }
                    DynIndex::Indirect { inner, scale } => {
                        let n = self.fmt_ref(inner);
                        if *scale == 1 {
                            n
                        } else {
                            format!("{scale}*{n}")
                        }
                    }
                };
                if term == "0" || term.is_empty() {
                    term = dstr;
                } else {
                    term = format!("{term} + {dstr}");
                }
            }
            let _ = write!(s, "{term}");
        }
        let _ = write!(s, "]");
        s
    }

    fn fmt_expr(&self, e: &Expr) -> String {
        match e {
            Expr::ConstF(x) => format!("{x}"),
            Expr::ConstI(x) => format!("{x}"),
            Expr::Load(r) => self.fmt_ref(r),
            Expr::Scalar(s) => self.scalar(*s).name.clone(),
            Expr::LoopVar(v) => self.var_name(*v).to_string(),
            Expr::Unary(op, a) => match op {
                UnOp::Neg => format!("-({})", self.fmt_expr(a)),
                UnOp::Sqrt => format!("sqrt({})", self.fmt_expr(a)),
                UnOp::Abs => format!("abs({})", self.fmt_expr(a)),
            },
            Expr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Min => {
                        return format!("min({}, {})", self.fmt_expr(a), self.fmt_expr(b))
                    }
                    BinOp::Max => {
                        return format!("max({}, {})", self.fmt_expr(a), self.fmt_expr(b))
                    }
                };
                format!("({} {sym} {})", self.fmt_expr(a), self.fmt_expr(b))
            }
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pseudocode())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;

    #[test]
    fn renders_fig2a_style() {
        let mut b = ProgramBuilder::new("fig2a");
        let a = b.array_f64("A", &[8, 8]);
        let j = b.var("j");
        let i = b.var("i");
        let s = b.scalar_f64("sum", 0.0);
        b.for_const(j, 0, 8, |b| {
            b.for_const(i, 0, 8, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let text = b.finish().to_pseudocode();
        assert!(text.contains("for (j = 0; j < 8; j++)"), "{text}");
        assert!(text.contains("A[j,i]"), "{text}");
        assert!(text.contains("sum = (sum + A[j,i]);"), "{text}");
    }

    #[test]
    fn renders_offsets_and_strides() {
        let mut b = ProgramBuilder::new("x");
        let a = b.array_f64("A", &[8, 8]);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 4, |b| {
            b.for_const(i, 0, 4, |b| {
                let r = b.load(
                    a,
                    &[
                        b.idx_e(crate::AffineExpr::var(j).offset(1)),
                        b.idx_e(crate::AffineExpr::scaled_var(i, 2, 0)),
                    ],
                );
                b.assign_array(a, &[b.idx(j), b.idx(i)], r);
            });
        });
        let text = b.finish().to_pseudocode();
        assert!(text.contains("A[j + 1,2*i]"), "{text}");
    }
}
