//! Ergonomic construction of [`Program`]s.
//!
//! [`ProgramBuilder`] keeps a stack of open statement lists so loop nests
//! can be written with nested closures:
//!
//! ```
//! use mempar_ir::ProgramBuilder;
//! let mut b = ProgramBuilder::new("axpy");
//! let x = b.array_f64("x", &[128]);
//! let y = b.array_f64("y", &[128]);
//! let i = b.var("i");
//! b.for_const(i, 0, 128, |b| {
//!     let xi = b.load(x, &[b.idx(i)]);
//!     let yi = b.load(y, &[b.idx(i)]);
//!     let two = b.constf(2.0);
//!     let ax = b.mul(two, xi);
//!     let s = b.add(ax, yi);
//!     b.assign_array(y, &[b.idx(i)], s);
//! });
//! let prog = b.finish();
//! assert_eq!(prog.arrays.len(), 2);
//! ```

use crate::expr::{AffineExpr, BinOp, Cond, Expr, UnOp};
use crate::program::{
    ArrayDecl, ArrayId, ArrayRef, Bound, Dist, ElemType, Index, Loop, Program, ScalarDecl,
    ScalarId, Stmt, VarId,
};

/// Builder for [`Program`]s. See the crate-level docs for an example.
#[derive(Debug)]
pub struct ProgramBuilder {
    prog: Program,
    stack: Vec<Vec<Stmt>>,
}

impl ProgramBuilder {
    /// Starts a new program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            prog: Program {
                name: name.into(),
                ..Program::default()
            },
            stack: vec![Vec::new()],
        }
    }

    /// Declares a row-major f64 array.
    pub fn array_f64(&mut self, name: impl Into<String>, dims: &[usize]) -> ArrayId {
        self.declare_array(name, dims, ElemType::F64)
    }

    /// Declares a row-major i64 array (indices, pointers).
    pub fn array_i64(&mut self, name: impl Into<String>, dims: &[usize]) -> ArrayId {
        self.declare_array(name, dims, ElemType::I64)
    }

    fn declare_array(
        &mut self,
        name: impl Into<String>,
        dims: &[usize],
        elem: ElemType,
    ) -> ArrayId {
        assert!(!dims.is_empty(), "arrays need at least one dimension");
        let id = ArrayId::from_raw(self.prog.arrays.len() as u32);
        self.prog.arrays.push(ArrayDecl {
            name: name.into(),
            dims: dims.to_vec(),
            elem,
        });
        id
    }

    /// Declares an f64 scalar with an initial value.
    pub fn scalar_f64(&mut self, name: impl Into<String>, init: f64) -> ScalarId {
        let id = ScalarId::from_raw(self.prog.scalars.len() as u32);
        self.prog.scalars.push(ScalarDecl {
            name: name.into(),
            elem: ElemType::F64,
            init_bits: init.to_bits(),
        });
        id
    }

    /// Declares an i64 scalar with an initial value.
    pub fn scalar_i64(&mut self, name: impl Into<String>, init: i64) -> ScalarId {
        let id = ScalarId::from_raw(self.prog.scalars.len() as u32);
        self.prog.scalars.push(ScalarDecl {
            name: name.into(),
            elem: ElemType::I64,
            init_bits: init as u64,
        });
        id
    }

    /// Declares a loop variable.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        self.prog.fresh_var(name)
    }

    /// Reserves `n` synchronization flags.
    pub fn flags(&mut self, n: usize) {
        self.prog.num_flags = self.prog.num_flags.max(n);
    }

    // ---- expression constructors -------------------------------------

    /// Index expression that is just loop variable `v`.
    pub fn idx(&self, v: VarId) -> Index {
        Index::affine(AffineExpr::var(v))
    }

    /// Index from an arbitrary affine expression.
    pub fn idx_e(&self, e: AffineExpr) -> Index {
        Index::affine(e)
    }

    /// Load expression `a[indices]`.
    pub fn load(&self, a: ArrayId, indices: &[Index]) -> Expr {
        Expr::Load(ArrayRef::new(a, indices.to_vec()))
    }

    /// Load expression from a pre-built reference.
    pub fn load_ref(&self, r: ArrayRef) -> Expr {
        Expr::Load(r)
    }

    /// Read of scalar `s`.
    pub fn scalar(&self, s: ScalarId) -> Expr {
        Expr::Scalar(s)
    }

    /// FP constant.
    pub fn constf(&self, x: f64) -> Expr {
        Expr::ConstF(x)
    }

    /// Integer constant.
    pub fn consti(&self, x: i64) -> Expr {
        Expr::ConstI(x)
    }

    /// The current value of loop variable `v` as an expression.
    pub fn loop_var(&self, v: VarId) -> Expr {
        Expr::LoopVar(v)
    }

    /// `a + b`
    pub fn add(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a - b`
    pub fn sub(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// `a * b`
    pub fn mul(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// `a / b`
    pub fn div(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Div, a, b)
    }

    /// `min(a, b)`
    pub fn min(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Min, a, b)
    }

    /// `max(a, b)`
    pub fn max(&self, a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Max, a, b)
    }

    /// `-a`
    pub fn neg(&self, a: Expr) -> Expr {
        Expr::un(UnOp::Neg, a)
    }

    /// `sqrt(a)`
    pub fn sqrt(&self, a: Expr) -> Expr {
        Expr::un(UnOp::Sqrt, a)
    }

    // ---- statements ---------------------------------------------------

    fn push_stmt(&mut self, s: Stmt) {
        self.stack
            .last_mut()
            .expect("builder statement stack never empty")
            .push(s);
    }

    /// Appends `a[indices] = rhs`.
    pub fn assign_array(&mut self, a: ArrayId, indices: &[Index], rhs: Expr) {
        self.push_stmt(Stmt::AssignArray {
            lhs: ArrayRef::new(a, indices.to_vec()),
            rhs,
        });
    }

    /// Appends a store through a pre-built reference.
    pub fn assign_ref(&mut self, lhs: ArrayRef, rhs: Expr) {
        self.push_stmt(Stmt::AssignArray { lhs, rhs });
    }

    /// Appends `s = rhs`.
    pub fn assign_scalar(&mut self, s: ScalarId, rhs: Expr) {
        self.push_stmt(Stmt::AssignScalar { lhs: s, rhs });
    }

    /// Appends a global barrier.
    pub fn barrier(&mut self) {
        self.push_stmt(Stmt::Barrier);
    }

    /// Appends a flag set (release).
    pub fn flag_set(&mut self, idx: AffineExpr) {
        self.push_stmt(Stmt::FlagSet { idx });
    }

    /// Appends a flag wait (acquire).
    pub fn flag_wait(&mut self, idx: AffineExpr) {
        self.push_stmt(Stmt::FlagWait { idx });
    }

    /// Appends a software prefetch of `a[indices]`.
    pub fn prefetch(&mut self, a: ArrayId, indices: &[Index]) {
        self.push_stmt(Stmt::Prefetch {
            target: ArrayRef::new(a, indices.to_vec()),
        });
    }

    /// Generic loop: bounds, step and optional distribution.
    pub fn for_loop(
        &mut self,
        var: VarId,
        lo: impl Into<Bound>,
        hi: impl Into<Bound>,
        step: i64,
        dist: Option<Dist>,
        f: impl FnOnce(&mut Self),
    ) {
        self.stack.push(Vec::new());
        f(self);
        let body = self.stack.pop().expect("matching push");
        self.push_stmt(Stmt::Loop(Loop {
            var,
            lo: lo.into(),
            hi: hi.into(),
            step,
            dist,
            body,
        }));
    }

    /// `for var in lo..hi` with constant bounds.
    pub fn for_const(&mut self, var: VarId, lo: i64, hi: i64, f: impl FnOnce(&mut Self)) {
        self.for_loop(var, lo, hi, 1, None, f);
    }

    /// `for var in lo..hi` with a custom step (negative = backwards).
    pub fn for_step(&mut self, var: VarId, lo: i64, hi: i64, step: i64, f: impl FnOnce(&mut Self)) {
        self.for_loop(var, lo, hi, step, None, f);
    }

    /// A parallel loop distributed over processors.
    pub fn for_dist(
        &mut self,
        var: VarId,
        lo: i64,
        hi: i64,
        dist: Dist,
        f: impl FnOnce(&mut Self),
    ) {
        self.for_loop(var, lo, hi, 1, Some(dist), f);
    }

    /// `for var in lo..hi` with affine bounds (triangular loops).
    pub fn for_affine(
        &mut self,
        var: VarId,
        lo: impl Into<AffineExpr>,
        hi: impl Into<AffineExpr>,
        f: impl FnOnce(&mut Self),
    ) {
        self.for_loop(
            var,
            Bound::from(lo.into()),
            Bound::from(hi.into()),
            1,
            None,
            f,
        );
    }

    /// `for var in lo..n` where `n` is a scalar read at loop entry.
    pub fn for_scalar(&mut self, var: VarId, lo: i64, hi: ScalarId, f: impl FnOnce(&mut Self)) {
        self.for_loop(var, Bound::Const(lo), Bound::Scalar(hi), 1, None, f);
    }

    /// `if cond { ... }`
    pub fn if_then(&mut self, cond: Cond, f: impl FnOnce(&mut Self)) {
        self.stack.push(Vec::new());
        f(self);
        let then_branch = self.stack.pop().expect("matching push");
        self.push_stmt(Stmt::If {
            cond,
            then_branch,
            else_branch: Vec::new(),
        });
    }

    /// `if cond { ... } else { ... }`
    pub fn if_then_else(
        &mut self,
        cond: Cond,
        f_then: impl FnOnce(&mut Self),
        f_else: impl FnOnce(&mut Self),
    ) {
        self.stack.push(Vec::new());
        f_then(self);
        let then_branch = self.stack.pop().expect("matching push");
        self.stack.push(Vec::new());
        f_else(self);
        let else_branch = self.stack.pop().expect("matching push");
        self.push_stmt(Stmt::If {
            cond,
            then_branch,
            else_branch,
        });
    }

    /// Finalizes and returns the program.
    ///
    /// # Panics
    /// Panics if a loop or guard body is still open (unbalanced builder
    /// usage — impossible with the closure-based API).
    pub fn finish(mut self) -> Program {
        assert_eq!(self.stack.len(), 1, "unbalanced loop/guard nesting");
        self.prog.body = self.stack.pop().expect("root statement list");
        self.prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_loops_build_nested_stmts() {
        let mut b = ProgramBuilder::new("n");
        let j = b.var("j");
        let i = b.var("i");
        let a = b.array_f64("a", &[4, 4]);
        b.for_const(j, 0, 4, |b| {
            b.for_const(i, 0, 4, |b| {
                let one = b.constf(1.0);
                b.assign_array(a, &[b.idx(j), b.idx(i)], one);
            });
        });
        let p = b.finish();
        assert_eq!(p.body.len(), 1);
        let Stmt::Loop(outer) = &p.body[0] else {
            panic!("expected loop")
        };
        assert_eq!(outer.var, j);
        let Stmt::Loop(inner) = &outer.body[0] else {
            panic!("expected inner loop")
        };
        assert_eq!(inner.var, i);
        assert_eq!(inner.body.len(), 1);
    }

    #[test]
    fn if_else_builds_both_branches() {
        let mut b = ProgramBuilder::new("g");
        let i = b.var("i");
        let s = b.scalar_f64("s", 0.0);
        b.for_const(i, 0, 2, |b| {
            let cond = Cond::lt(AffineExpr::var(i), AffineExpr::konst(1));
            b.if_then_else(
                cond,
                |b| {
                    let one = b.constf(1.0);
                    b.assign_scalar(s, one)
                },
                |b| {
                    let two = b.constf(2.0);
                    b.assign_scalar(s, two)
                },
            );
        });
        let p = b.finish();
        let Stmt::Loop(l) = &p.body[0] else { panic!() };
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = &l.body[0]
        else {
            panic!()
        };
        assert_eq!(then_branch.len(), 1);
        assert_eq!(else_branch.len(), 1);
    }

    #[test]
    fn flags_reserved() {
        let mut b = ProgramBuilder::new("f");
        b.flags(4);
        b.flags(2);
        assert_eq!(b.finish().num_flags, 4);
    }
}
