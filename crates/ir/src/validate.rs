//! Static well-formedness checking for [`Program`]s.
//!
//! Workload authors and transformation passes both produce programs; this
//! pass catches structural mistakes (rank mismatches, undeclared ids,
//! duplicate loop variables on a nest path, flags out of range) *before*
//! they surface as interpreter panics deep inside a simulation.

use std::fmt;

use crate::expr::Expr;
use crate::program::{ArrayRef, Bound, DynIndex, Program, Stmt, VarId};

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A reference's index count differs from the array's rank.
    RankMismatch {
        /// Offending array name.
        array: String,
        /// Declared rank.
        rank: usize,
        /// Indices supplied.
        got: usize,
    },
    /// An id referenced but not declared.
    UndeclaredId {
        /// Description of the id.
        what: String,
    },
    /// The same loop variable is reused by two nested loops.
    ShadowedLoopVar {
        /// The variable's name.
        var: String,
    },
    /// A loop with step 0 would never terminate.
    ZeroStep {
        /// The variable's name.
        var: String,
    },
    /// A flag index that can exceed the declared flag count.
    FlagOutOfRange {
        /// The constant flag index found.
        idx: i64,
        /// Declared flag count.
        declared: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::RankMismatch { array, rank, got } => {
                write!(f, "array {array} has rank {rank} but was indexed with {got} indices")
            }
            ValidateError::UndeclaredId { what } => write!(f, "undeclared {what}"),
            ValidateError::ShadowedLoopVar { var } => {
                write!(f, "loop variable {var} shadowed by a nested loop")
            }
            ValidateError::ZeroStep { var } => write!(f, "loop over {var} has step 0"),
            ValidateError::FlagOutOfRange { idx, declared } => {
                write!(f, "flag index {idx} out of range (declared {declared})")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Checks structural well-formedness; returns every violation found.
    pub fn validate(&self) -> Vec<ValidateError> {
        let mut errs = Vec::new();
        let mut open_vars: Vec<VarId> = Vec::new();
        self.validate_body(&self.body, &mut open_vars, &mut errs);
        errs
    }

    fn validate_ref(&self, r: &ArrayRef, errs: &mut Vec<ValidateError>) {
        if r.array.index() >= self.arrays.len() {
            errs.push(ValidateError::UndeclaredId {
                what: format!("array id {}", r.array.index()),
            });
            return;
        }
        let decl = self.array(r.array);
        if decl.dims.len() != r.indices.len() {
            errs.push(ValidateError::RankMismatch {
                array: decl.name.clone(),
                rank: decl.dims.len(),
                got: r.indices.len(),
            });
        }
        for ix in &r.indices {
            match &ix.dynamic {
                Some(DynIndex::Indirect { inner, .. }) => self.validate_ref(inner, errs),
                Some(DynIndex::Scalar { scalar, .. })
                    if scalar.index() >= self.scalars.len() =>
                {
                    errs.push(ValidateError::UndeclaredId {
                        what: format!("scalar id {}", scalar.index()),
                    });
                }
                _ => {}
            }
        }
    }

    fn validate_expr(&self, e: &Expr, errs: &mut Vec<ValidateError>) {
        match e {
            Expr::Load(r) => self.validate_ref(r, errs),
            Expr::Scalar(s) if s.index() >= self.scalars.len() => {
                errs.push(ValidateError::UndeclaredId {
                    what: format!("scalar id {}", s.index()),
                });
            }
            Expr::Unary(_, a) => self.validate_expr(a, errs),
            Expr::Binary(_, a, b) => {
                self.validate_expr(a, errs);
                self.validate_expr(b, errs);
            }
            _ => {}
        }
    }

    fn validate_body(
        &self,
        body: &[Stmt],
        open_vars: &mut Vec<VarId>,
        errs: &mut Vec<ValidateError>,
    ) {
        for s in body {
            match s {
                Stmt::AssignArray { lhs, rhs } => {
                    self.validate_ref(lhs, errs);
                    self.validate_expr(rhs, errs);
                }
                Stmt::AssignScalar { lhs, rhs } => {
                    if lhs.index() >= self.scalars.len() {
                        errs.push(ValidateError::UndeclaredId {
                            what: format!("scalar id {}", lhs.index()),
                        });
                    }
                    self.validate_expr(rhs, errs);
                }
                Stmt::Prefetch { target } => self.validate_ref(target, errs),
                Stmt::Loop(l) => {
                    if l.step == 0 {
                        errs.push(ValidateError::ZeroStep {
                            var: self.var_name(l.var).to_string(),
                        });
                    }
                    if open_vars.contains(&l.var) {
                        errs.push(ValidateError::ShadowedLoopVar {
                            var: self.var_name(l.var).to_string(),
                        });
                    }
                    if let Bound::Scalar(sc) = &l.hi {
                        if sc.index() >= self.scalars.len() {
                            errs.push(ValidateError::UndeclaredId {
                                what: format!("scalar id {} (loop bound)", sc.index()),
                            });
                        }
                    }
                    open_vars.push(l.var);
                    self.validate_body(&l.body, open_vars, errs);
                    open_vars.pop();
                }
                Stmt::If { then_branch, else_branch, .. } => {
                    self.validate_body(then_branch, open_vars, errs);
                    self.validate_body(else_branch, open_vars, errs);
                }
                Stmt::FlagSet { idx } | Stmt::FlagWait { idx } => {
                    if let Some(c) = idx.as_const() {
                        if c < 0 || c as usize >= self.num_flags.max(1) {
                            errs.push(ValidateError::FlagOutOfRange {
                                idx: c,
                                declared: self.num_flags,
                            });
                        }
                    }
                }
                Stmt::Barrier => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::AffineExpr;
    use crate::program::Index;

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new("ok");
        let a = b.array_f64("a", &[8, 8]);
        let j = b.var("j");
        let i = b.var("i");
        b.flags(2);
        b.for_const(j, 0, 8, |b| {
            b.for_const(i, 0, 8, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                b.assign_array(a, &[b.idx(j), b.idx(i)], v);
            });
            b.flag_set(AffineExpr::konst(1));
        });
        assert!(b.finish().validate().is_empty());
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.array_f64("a", &[8, 8]);
        let i = b.var("i");
        b.for_const(i, 0, 8, |b| {
            let v = b.load(a, &[b.idx(i)]); // 1 index, rank 2
            b.assign_array(a, &[b.idx(i), b.idx(i)], v);
        });
        let errs = b.finish().validate();
        assert!(matches!(errs[0], ValidateError::RankMismatch { .. }), "{errs:?}");
    }

    #[test]
    fn shadowed_var_detected() {
        let mut b = ProgramBuilder::new("shadow");
        let a = b.array_f64("a", &[8]);
        let i = b.var("i");
        b.for_const(i, 0, 4, |b| {
            b.for_const(i, 0, 4, |b| {
                let one = b.constf(1.0);
                b.assign_array(a, &[b.idx(i)], one);
            });
        });
        let errs = b.finish().validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::ShadowedLoopVar { .. })));
    }

    #[test]
    fn flag_out_of_range_detected() {
        let mut b = ProgramBuilder::new("flags");
        b.flags(2);
        b.flag_wait(AffineExpr::konst(5));
        let errs = b.finish().validate();
        assert_eq!(
            errs,
            vec![ValidateError::FlagOutOfRange { idx: 5, declared: 2 }]
        );
    }

    #[test]
    fn undeclared_scalar_in_indirect_detected() {
        use crate::program::{ArrayRef, ScalarId};
        let mut b = ProgramBuilder::new("und");
        let a = b.array_f64("a", &[8]);
        let ghost = ScalarId::from_raw(42);
        let i = b.var("i");
        b.for_const(i, 0, 4, |b| {
            let r = ArrayRef::new(a, vec![Index::scalar(ghost)]);
            let v = b.load_ref(r);
            b.assign_array(a, &[b.idx(i)], v);
        });
        let errs = b.finish().validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UndeclaredId { .. })));
    }

    #[test]
    fn errors_display() {
        let e = ValidateError::ZeroStep { var: "i".into() };
        assert!(format!("{e}").contains("step 0"));
    }

    /// Every shipped workload validates cleanly (meta-test used by the
    /// workloads crate as well; kept here to pin the validator itself).
    #[test]
    fn transformed_programs_validate() {
        let mut b = ProgramBuilder::new("fig2a");
        let a = b.array_f64("a", &[32, 32]);
        let s = b.scalar_f64("sum", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 32, |b| {
            b.for_const(i, 0, 32, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        assert!(p.validate().is_empty());
    }
}
