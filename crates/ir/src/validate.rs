//! Static well-formedness checking for [`Program`]s.
//!
//! Workload authors and transformation passes both produce programs; this
//! pass catches structural mistakes (rank mismatches, undeclared ids,
//! duplicate loop variables on a nest path, flags out of range) *before*
//! they surface as interpreter panics deep inside a simulation.

use std::fmt;

use crate::expr::Expr;
use crate::program::{ArrayRef, Bound, DynIndex, ElemType, Loop, Program, Stmt, VarId};

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A reference's index count differs from the array's rank.
    RankMismatch {
        /// Offending array name.
        array: String,
        /// Declared rank.
        rank: usize,
        /// Indices supplied.
        got: usize,
    },
    /// An id referenced but not declared.
    UndeclaredId {
        /// Description of the id.
        what: String,
    },
    /// The same loop variable is reused by two nested loops.
    ShadowedLoopVar {
        /// The variable's name.
        var: String,
    },
    /// A loop with step 0 would never terminate.
    ZeroStep {
        /// The variable's name.
        var: String,
    },
    /// A flag index that can exceed the declared flag count.
    FlagOutOfRange {
        /// The constant flag index found.
        idx: i64,
        /// Declared flag count.
        declared: usize,
    },
    /// A statically constant index that falls outside the array extent.
    /// (Prefetch targets are exempt: the interpreter clamps them, since
    /// non-binding prefetches near loop bounds may legitimately run past
    /// the end.)
    IndexOutOfBounds {
        /// Offending array name.
        array: String,
        /// Dimension (outermost-first) of the bad index.
        dim: usize,
        /// The constant index value.
        idx: i64,
        /// Declared extent of that dimension.
        extent: usize,
    },
    /// A floating-point value used where an integer is required (dynamic
    /// array index, indirection array, or loop bound).
    TypeMismatch {
        /// Description of the misuse.
        what: String,
    },
    /// A loop bound that mentions the loop's own variable.
    MalformedLoopBound {
        /// The variable's name.
        var: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::RankMismatch { array, rank, got } => {
                write!(
                    f,
                    "array {array} has rank {rank} but was indexed with {got} indices"
                )
            }
            ValidateError::UndeclaredId { what } => write!(f, "undeclared {what}"),
            ValidateError::ShadowedLoopVar { var } => {
                write!(f, "loop variable {var} shadowed by a nested loop")
            }
            ValidateError::ZeroStep { var } => write!(f, "loop over {var} has step 0"),
            ValidateError::FlagOutOfRange { idx, declared } => {
                write!(f, "flag index {idx} out of range (declared {declared})")
            }
            ValidateError::IndexOutOfBounds {
                array,
                dim,
                idx,
                extent,
            } => {
                write!(
                    f,
                    "array {array} dimension {dim}: constant index {idx} outside extent {extent}"
                )
            }
            ValidateError::TypeMismatch { what } => write!(f, "type mismatch: {what}"),
            ValidateError::MalformedLoopBound { var } => {
                write!(f, "loop bound over {var} mentions {var} itself")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Checks structural well-formedness; returns every violation found.
    pub fn validate(&self) -> Vec<ValidateError> {
        let mut errs = Vec::new();
        let mut open_vars: Vec<VarId> = Vec::new();
        self.validate_body(&self.body, &mut open_vars, &mut errs);
        errs
    }

    /// `clamped` is true for prefetch targets, whose addresses the
    /// interpreter clamps into bounds (so constant overruns are fine).
    fn validate_ref(&self, r: &ArrayRef, clamped: bool, errs: &mut Vec<ValidateError>) {
        if r.array.index() >= self.arrays.len() {
            errs.push(ValidateError::UndeclaredId {
                what: format!("array id {}", r.array.index()),
            });
            return;
        }
        let decl = self.array(r.array);
        if decl.dims.len() != r.indices.len() {
            errs.push(ValidateError::RankMismatch {
                array: decl.name.clone(),
                rank: decl.dims.len(),
                got: r.indices.len(),
            });
        }
        for (d, ix) in r.indices.iter().enumerate() {
            if !clamped && ix.dynamic.is_none() {
                if let (Some(c), Some(&extent)) = (ix.affine.as_const(), decl.dims.get(d)) {
                    if c < 0 || c as usize >= extent {
                        errs.push(ValidateError::IndexOutOfBounds {
                            array: decl.name.clone(),
                            dim: d,
                            idx: c,
                            extent,
                        });
                    }
                }
            }
            match &ix.dynamic {
                Some(DynIndex::Indirect { inner, .. }) => {
                    if inner.array.index() < self.arrays.len()
                        && self.array(inner.array).elem == ElemType::F64
                    {
                        errs.push(ValidateError::TypeMismatch {
                            what: format!(
                                "f64 array {} used as an indirection (index) array",
                                self.array(inner.array).name
                            ),
                        });
                    }
                    self.validate_ref(inner, clamped, errs);
                }
                Some(DynIndex::Scalar { scalar, .. }) => {
                    if scalar.index() >= self.scalars.len() {
                        errs.push(ValidateError::UndeclaredId {
                            what: format!("scalar id {}", scalar.index()),
                        });
                    } else if self.scalar(*scalar).elem == ElemType::F64 {
                        errs.push(ValidateError::TypeMismatch {
                            what: format!(
                                "f64 scalar {} used as a dynamic array index",
                                self.scalar(*scalar).name
                            ),
                        });
                    }
                }
                None => {}
            }
        }
    }

    /// Checks one loop bound: declared (and integer-typed) scalar bounds,
    /// and no self-reference on the loop's own variable.
    fn validate_bound(&self, l: &Loop, b: &Bound, errs: &mut Vec<ValidateError>) {
        match b {
            Bound::Scalar(sc) => {
                if sc.index() >= self.scalars.len() {
                    errs.push(ValidateError::UndeclaredId {
                        what: format!("scalar id {} (loop bound)", sc.index()),
                    });
                } else if self.scalar(*sc).elem == ElemType::F64 {
                    errs.push(ValidateError::TypeMismatch {
                        what: format!("f64 scalar {} used as a loop bound", self.scalar(*sc).name),
                    });
                }
            }
            Bound::Affine(e) => {
                if !e.is_free_of(l.var) {
                    errs.push(ValidateError::MalformedLoopBound {
                        var: self.var_name(l.var).to_string(),
                    });
                }
            }
            Bound::Const(_) => {}
        }
    }

    fn validate_expr(&self, e: &Expr, errs: &mut Vec<ValidateError>) {
        match e {
            Expr::Load(r) => self.validate_ref(r, false, errs),
            Expr::Scalar(s) if s.index() >= self.scalars.len() => {
                errs.push(ValidateError::UndeclaredId {
                    what: format!("scalar id {}", s.index()),
                });
            }
            Expr::Unary(_, a) => self.validate_expr(a, errs),
            Expr::Binary(_, a, b) => {
                self.validate_expr(a, errs);
                self.validate_expr(b, errs);
            }
            _ => {}
        }
    }

    fn validate_body(
        &self,
        body: &[Stmt],
        open_vars: &mut Vec<VarId>,
        errs: &mut Vec<ValidateError>,
    ) {
        for s in body {
            match s {
                Stmt::AssignArray { lhs, rhs } => {
                    self.validate_ref(lhs, false, errs);
                    self.validate_expr(rhs, errs);
                }
                Stmt::AssignScalar { lhs, rhs } => {
                    if lhs.index() >= self.scalars.len() {
                        errs.push(ValidateError::UndeclaredId {
                            what: format!("scalar id {}", lhs.index()),
                        });
                    }
                    self.validate_expr(rhs, errs);
                }
                Stmt::Prefetch { target } => self.validate_ref(target, true, errs),
                Stmt::Loop(l) => {
                    if l.step == 0 {
                        errs.push(ValidateError::ZeroStep {
                            var: self.var_name(l.var).to_string(),
                        });
                    }
                    if open_vars.contains(&l.var) {
                        errs.push(ValidateError::ShadowedLoopVar {
                            var: self.var_name(l.var).to_string(),
                        });
                    }
                    self.validate_bound(l, &l.lo, errs);
                    self.validate_bound(l, &l.hi, errs);
                    open_vars.push(l.var);
                    self.validate_body(&l.body, open_vars, errs);
                    open_vars.pop();
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.validate_body(then_branch, open_vars, errs);
                    self.validate_body(else_branch, open_vars, errs);
                }
                Stmt::FlagSet { idx } | Stmt::FlagWait { idx } => {
                    if let Some(c) = idx.as_const() {
                        if c < 0 || c as usize >= self.num_flags.max(1) {
                            errs.push(ValidateError::FlagOutOfRange {
                                idx: c,
                                declared: self.num_flags,
                            });
                        }
                    }
                }
                Stmt::Barrier => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::AffineExpr;
    use crate::program::{ArrayRef, Index};

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new("ok");
        let a = b.array_f64("a", &[8, 8]);
        let j = b.var("j");
        let i = b.var("i");
        b.flags(2);
        b.for_const(j, 0, 8, |b| {
            b.for_const(i, 0, 8, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                b.assign_array(a, &[b.idx(j), b.idx(i)], v);
            });
            b.flag_set(AffineExpr::konst(1));
        });
        assert!(b.finish().validate().is_empty());
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.array_f64("a", &[8, 8]);
        let i = b.var("i");
        b.for_const(i, 0, 8, |b| {
            let v = b.load(a, &[b.idx(i)]); // 1 index, rank 2
            b.assign_array(a, &[b.idx(i), b.idx(i)], v);
        });
        let errs = b.finish().validate();
        assert!(
            matches!(errs[0], ValidateError::RankMismatch { .. }),
            "{errs:?}"
        );
    }

    #[test]
    fn shadowed_var_detected() {
        let mut b = ProgramBuilder::new("shadow");
        let a = b.array_f64("a", &[8]);
        let i = b.var("i");
        b.for_const(i, 0, 4, |b| {
            b.for_const(i, 0, 4, |b| {
                let one = b.constf(1.0);
                b.assign_array(a, &[b.idx(i)], one);
            });
        });
        let errs = b.finish().validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::ShadowedLoopVar { .. })));
    }

    #[test]
    fn flag_out_of_range_detected() {
        let mut b = ProgramBuilder::new("flags");
        b.flags(2);
        b.flag_wait(AffineExpr::konst(5));
        let errs = b.finish().validate();
        assert_eq!(
            errs,
            vec![ValidateError::FlagOutOfRange {
                idx: 5,
                declared: 2
            }]
        );
    }

    #[test]
    fn undeclared_scalar_in_indirect_detected() {
        use crate::program::{ArrayRef, ScalarId};
        let mut b = ProgramBuilder::new("und");
        let a = b.array_f64("a", &[8]);
        let ghost = ScalarId::from_raw(42);
        let i = b.var("i");
        b.for_const(i, 0, 4, |b| {
            let r = ArrayRef::new(a, vec![Index::scalar(ghost)]);
            let v = b.load_ref(r);
            b.assign_array(a, &[b.idx(i)], v);
        });
        let errs = b.finish().validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UndeclaredId { .. })));
    }

    #[test]
    fn errors_display() {
        let e = ValidateError::ZeroStep { var: "i".into() };
        assert!(format!("{e}").contains("step 0"));
        let e = ValidateError::IndexOutOfBounds {
            array: "a".into(),
            dim: 1,
            idx: 9,
            extent: 8,
        };
        assert!(format!("{e}").contains("outside extent 8"));
        let e = ValidateError::TypeMismatch { what: "x".into() };
        assert!(format!("{e}").contains("type mismatch"));
        let e = ValidateError::MalformedLoopBound { var: "j".into() };
        assert!(format!("{e}").contains("itself"));
    }

    #[test]
    fn constant_index_out_of_bounds_detected() {
        let mut b = ProgramBuilder::new("oob");
        let a = b.array_f64("a", &[8, 4]);
        let j = b.var("j");
        b.for_const(j, 0, 8, |b| {
            let v = b.load(a, &[b.idx(j), b.idx_e(AffineExpr::konst(4))]);
            b.assign_array(a, &[b.idx(j), b.idx_e(AffineExpr::konst(-1))], v);
        });
        let errs = b.finish().validate();
        assert_eq!(
            errs,
            vec![
                // The store's target is visited before its operand load.
                ValidateError::IndexOutOfBounds {
                    array: "a".into(),
                    dim: 1,
                    idx: -1,
                    extent: 4
                },
                ValidateError::IndexOutOfBounds {
                    array: "a".into(),
                    dim: 1,
                    idx: 4,
                    extent: 4
                },
            ]
        );
    }

    #[test]
    fn prefetch_targets_may_overrun() {
        // The interpreter clamps prefetch addresses, so guard-free
        // prefetching past the end of an array must validate cleanly.
        let mut b = ProgramBuilder::new("pf");
        let a = b.array_f64("a", &[8]);
        let i = b.var("i");
        b.for_const(i, 0, 8, |b| {
            b.prefetch(a, &[b.idx_e(AffineExpr::var(i).offset(16))]);
            let v = b.load(a, &[b.idx(i)]);
            b.assign_array(a, &[b.idx(i)], v);
        });
        assert!(b.finish().validate().is_empty());
    }

    #[test]
    fn f64_scalar_as_dynamic_index_detected() {
        let mut b = ProgramBuilder::new("fidx");
        let a = b.array_f64("a", &[8]);
        let s = b.scalar_f64("p", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 4, |b| {
            let r = ArrayRef::new(a, vec![Index::scalar(s)]);
            let v = b.load_ref(r);
            b.assign_array(a, &[b.idx(i)], v);
        });
        let errs = b.finish().validate();
        assert!(
            errs.iter().any(|e| matches!(
                e,
                ValidateError::TypeMismatch { what } if what.contains("dynamic array index")
            )),
            "{errs:?}"
        );
    }

    #[test]
    fn f64_indirection_array_detected() {
        let mut b = ProgramBuilder::new("find");
        let a = b.array_f64("a", &[8]);
        let idx = b.array_f64("idx", &[8]); // should have been i64
        let i = b.var("i");
        b.for_const(i, 0, 8, |b| {
            let inner = ArrayRef::new(idx, vec![Index::affine(AffineExpr::var(i))]);
            let r = ArrayRef::new(a, vec![Index::indirect(inner)]);
            let v = b.load_ref(r);
            b.assign_array(a, &[b.idx(i)], v);
        });
        let errs = b.finish().validate();
        assert!(
            errs.iter().any(|e| matches!(
                e,
                ValidateError::TypeMismatch { what } if what.contains("indirection")
            )),
            "{errs:?}"
        );
    }

    #[test]
    fn f64_loop_bound_detected() {
        let mut b = ProgramBuilder::new("fbound");
        let a = b.array_f64("a", &[8]);
        let n = b.scalar_f64("n", 8.0);
        let i = b.var("i");
        b.for_scalar(i, 0, n, |b| {
            let one = b.constf(1.0);
            b.assign_array(a, &[b.idx(i)], one);
        });
        let errs = b.finish().validate();
        assert!(
            errs.iter().any(|e| matches!(
                e,
                ValidateError::TypeMismatch { what } if what.contains("loop bound")
            )),
            "{errs:?}"
        );
    }

    #[test]
    fn self_referential_loop_bound_detected() {
        use crate::program::{Bound, Loop};
        let mut b = ProgramBuilder::new("selfb");
        let a = b.array_f64("a", &[8]);
        let i = b.var("i");
        b.for_const(i, 0, 8, |b| {
            let one = b.constf(1.0);
            b.assign_array(a, &[b.idx(i)], one);
        });
        let mut p = b.finish();
        // for (i = 0; i < i + 8; i++) — the bound names its own variable.
        let Stmt::Loop(Loop { hi, .. }) = &mut p.body[0] else {
            panic!("loop")
        };
        *hi = Bound::Affine(AffineExpr::var(i).offset(8));
        let errs = p.validate();
        assert_eq!(
            errs,
            vec![ValidateError::MalformedLoopBound { var: "i".into() }]
        );
    }

    /// Every shipped workload validates cleanly (meta-test used by the
    /// workloads crate as well; kept here to pin the validator itself).
    #[test]
    fn transformed_programs_validate() {
        let mut b = ProgramBuilder::new("fig2a");
        let a = b.array_f64("a", &[32, 32]);
        let s = b.scalar_f64("sum", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 32, |b| {
            b.for_const(i, 0, 32, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let e = b.add(acc, v);
                b.assign_scalar(s, e);
            });
        });
        let p = b.finish();
        assert!(p.validate().is_empty());
    }
}
