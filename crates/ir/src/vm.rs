//! The flat register VM executing [`BytecodeProgram`]s, plus engine
//! selection ([`Engine`], [`Executor`]) and engine-parametric functional
//! runners.
//!
//! The VM is the drop-in replacement for the tree-walking
//! [`Interp`](crate::Interp): one `Vm` per simulated processor pulls
//! dynamic ops through [`Vm::next_op`] exactly like the interpreter, and
//! by construction yields the *identical* op stream — same kinds,
//! addresses, source/destination vregs, in the same order. Equality of
//! vreg numbering falls out of emitting ops in the same order with the
//! same fresh-allocation policy; the differential gates in
//! `crates/difftest` enforce it over the whole corpus.

use crate::bytecode::{
    bin_value, coerce, to_i64, un_value, BoundCode, BytecodeProgram, DynCode, Insn, Opnd, TOp,
};
use crate::expr::CmpOp;
use crate::interp::{run_single, Interp, RunSummary};
use crate::mem::SimMem;
use crate::program::{Dist, Program};
use crate::trace::{DynOp, OpKind, SrcList};

/// Selects which functional engine produces the dynamic-op stream.
///
/// Both engines are observationally identical (bit-identical memory
/// images, op/address traces and simulated cycle counts); the bytecode
/// VM is simply faster. The interpreter remains the reference oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The recursive tree-walking interpreter ([`Interp`]).
    Interp,
    /// The flat bytecode register VM ([`Vm`]) — the default.
    #[default]
    Bytecode,
}

impl Engine {
    /// Stable lowercase name; round-trips through [`std::str::FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            Engine::Interp => "interp",
            Engine::Bytecode => "bytecode",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" | "tree" | "tree-walk" => Ok(Engine::Interp),
            "bytecode" | "vm" => Ok(Engine::Bytecode),
            other => Err(format!(
                "unknown engine '{other}' (expected 'interp' or 'bytecode')"
            )),
        }
    }
}

/// Runtime state of one active loop (mirrors the interpreter's
/// `Frame::LoopIter`).
#[derive(Debug, Clone, Copy)]
struct LoopFrame {
    loop_id: u32,
    /// Next iteration number (in 0..trip).
    k: i64,
    k_end: i64,
    k_stride: i64,
    /// First loop-variable value and per-iteration delta.
    var0: i64,
    var_step: i64,
    /// Vreg of the scalar upper bound, if any (branch dependence).
    bound_vreg: u32,
}

/// Maximum ops produced per [`Vm::refill`] batch: production runs ahead
/// of consumption by at most this many ops (and never past a
/// synchronization op), which amortizes the per-call dispatch cost while
/// a batch of 40-byte `DynOp`s stays L1-resident.
const BATCH_OPS: usize = 32;

/// The bytecode VM for one simulated processor.
///
/// Shares one compiled [`BytecodeProgram`] across processors; all
/// per-processor state (scalars, loop variables, temporaries, vreg
/// counter, loop frames) lives here.
#[derive(Debug)]
pub struct Vm<'p> {
    code: &'p BytecodeProgram,
    proc_id: usize,
    nprocs: usize,
    pc: u32,
    scalar_vals: Vec<u64>,
    scalar_vregs: Vec<u32>,
    var_vals: Vec<i64>,
    var_vregs: Vec<u32>,
    temps: Vec<u64>,
    temp_vregs: Vec<u32>,
    next_vreg: u32,
    /// Batch of produced-ahead ops (see [`Vm::refill`]); drained by
    /// index so nothing shifts.
    out: Vec<DynOp>,
    out_head: usize,
    frames: Vec<LoopFrame>,
    barriers_seen: u32,
    halted: bool,
}

impl<'p> Vm<'p> {
    /// Creates a VM for processor `proc_id` of `nprocs`.
    ///
    /// # Panics
    /// Panics if `proc_id >= nprocs` or `nprocs == 0`.
    pub fn new(code: &'p BytecodeProgram, proc_id: usize, nprocs: usize) -> Self {
        assert!(nprocs > 0 && proc_id < nprocs, "bad processor id");
        Vm {
            code,
            proc_id,
            nprocs,
            pc: 0,
            scalar_vals: code.scalar_inits.clone(),
            scalar_vregs: vec![0; code.scalar_inits.len()],
            var_vals: vec![0; code.n_vars],
            var_vregs: vec![0; code.n_vars],
            temps: vec![0; code.n_temps],
            temp_vregs: vec![0; code.n_temps],
            next_vreg: 1,
            out: Vec::with_capacity(BATCH_OPS + 4),
            out_head: 0,
            frames: Vec::new(),
            barriers_seen: 0,
            halted: false,
        }
    }

    /// The processor this VM runs as.
    pub fn proc_id(&self) -> usize {
        self.proc_id
    }

    /// Produces the next dynamic op, or `None` when the program has ended
    /// (after a final [`OpKind::Halt`] has been returned).
    ///
    /// The fast path is an inlined indexed pop from the current batch;
    /// [`Vm::refill`] produces the ops in bulk.
    #[inline]
    pub fn next_op(&mut self, mem: &mut SimMem) -> Option<DynOp> {
        if self.out_head < self.out.len() {
            return self.pop_out();
        }
        if self.halted {
            return None;
        }
        self.refill(mem);
        self.pop_out()
    }

    /// Runs the program to completion without a timing model.
    pub fn run_functional(&mut self, mem: &mut SimMem) -> RunSummary {
        let mut s = RunSummary::default();
        while let Some(op) = self.next_op(mem) {
            s.count(&op);
        }
        s
    }

    #[inline]
    fn fresh(&mut self) -> u32 {
        let v = self.next_vreg;
        self.next_vreg += 1;
        v
    }

    #[inline]
    fn emit(&mut self, kind: OpKind, srcs: SrcList, dst: Option<u32>) {
        self.out.push(DynOp { kind, srcs, dst });
    }

    #[inline]
    fn pop_out(&mut self) -> Option<DynOp> {
        let op = self.out.get(self.out_head).copied();
        if op.is_some() {
            self.out_head += 1;
            if self.out_head == self.out.len() {
                self.out.clear();
                self.out_head = 0;
            }
        }
        op
    }

    /// Current value bits and producing vreg of an operand.
    #[inline]
    fn operand(&self, t: TOp) -> (u64, u32) {
        match t.opnd {
            Opnd::Imm(b) => (b, 0),
            Opnd::Var(i) => (self.var_vals[i as usize] as u64, self.var_vregs[i as usize]),
            Opnd::Scalar(i) => (self.scalar_vals[i as usize], self.scalar_vregs[i as usize]),
            Opnd::Temp(i) => (self.temps[i as usize], self.temp_vregs[i as usize]),
        }
    }

    /// Fills the (empty) batch with up to [`BATCH_OPS`] dynamic ops by
    /// executing ahead of the consumer.
    ///
    /// Running ahead is observationally safe for exactly the programs
    /// the oracle accepts: within a synchronization phase the checked
    /// modes are conflict-free, so when a write lands relative to
    /// another processor's reads cannot change any value read — and a
    /// batch never extends past a synchronization op (`Barrier`,
    /// `FlagSet`, `FlagWait`, `Halt`), so cross-phase ordering is
    /// preserved. The tree-walking interpreter leans on the same
    /// argument at statement granularity (its per-statement buffer).
    /// Pure control flow continues in place — but every loop back-edge
    /// passes `LoopHead`, which always emits, so this cannot spin.
    fn refill(&mut self, mem: &mut SimMem) {
        debug_assert!(self.out.is_empty() && self.out_head == 0);
        let code = self.code;
        while self.out.len() < BATCH_OPS {
            match &code.insns[self.pc as usize] {
                Insn::Bin {
                    op,
                    kind,
                    a,
                    b,
                    dst,
                } => {
                    let (av, ar) = self.operand(*a);
                    let (bv, br) = self.operand(*b);
                    let bits = bin_value(*op, a.is_f, av, b.is_f, bv);
                    let v = self.fresh();
                    let mut srcs = SrcList::new();
                    if ar != 0 {
                        srcs.push(ar);
                    }
                    if br != 0 {
                        srcs.push(br);
                    }
                    self.temps[*dst as usize] = bits;
                    self.temp_vregs[*dst as usize] = v;
                    self.pc += 1;
                    self.emit(kind.op_kind(), srcs, Some(v));
                }
                Insn::Un { op, kind, a, dst } => {
                    let (av, ar) = self.operand(*a);
                    let bits = un_value(*op, a.is_f, av);
                    let v = self.fresh();
                    let mut srcs = SrcList::new();
                    if ar != 0 {
                        srcs.push(ar);
                    }
                    self.temps[*dst as usize] = bits;
                    self.temp_vregs[*dst as usize] = v;
                    self.pc += 1;
                    self.emit(kind.op_kind(), srcs, Some(v));
                }
                Insn::Folded { kind, bits, dst } => {
                    let v = self.fresh();
                    self.temps[*dst as usize] = *bits;
                    self.temp_vregs[*dst as usize] = v;
                    self.pc += 1;
                    self.emit(kind.op_kind(), SrcList::new(), Some(v));
                }
                Insn::Load { ref_id, dst } => {
                    let (addr, srcs) = self.resolve_ref(*ref_id, mem, false);
                    let bits = mem.load_bits(addr);
                    let v = self.fresh();
                    self.temps[*dst as usize] = bits;
                    self.temp_vregs[*dst as usize] = v;
                    self.pc += 1;
                    self.emit(OpKind::Load { addr }, srcs, Some(v));
                }
                Insn::Store { ref_id, src, to_f } => {
                    let (addr, mut srcs) = self.resolve_ref(*ref_id, mem, false);
                    let (bits, r) = self.operand(*src);
                    if r != 0 {
                        srcs.push(r);
                    }
                    mem.store_bits(addr, coerce(bits, src.is_f, *to_f));
                    self.pc += 1;
                    self.emit(OpKind::Store { addr }, srcs, None);
                }
                Insn::SetScalar { scalar, src, to_f } => {
                    let (bits, r) = self.operand(*src);
                    self.scalar_vals[*scalar as usize] = coerce(bits, src.is_f, *to_f);
                    self.scalar_vregs[*scalar as usize] = r;
                    self.pc += 1;
                }
                Insn::Prefetch { ref_id } => {
                    let (addr, srcs) = self.resolve_ref(*ref_id, mem, true);
                    self.pc += 1;
                    self.emit(OpKind::Prefetch { addr }, srcs, None);
                }
                Insn::LoopEnter { loop_id } => {
                    let lc = &code.loops[*loop_id as usize];
                    let (lo, lo_vreg) = self.resolve_bound(&lc.lo);
                    let (hi, hi_vreg) = self.resolve_bound(&lc.hi);
                    let bound_vreg = if hi_vreg != 0 { hi_vreg } else { lo_vreg };
                    let step = lc.step;
                    let span = (hi - lo).max(0);
                    let astep = step.abs();
                    let trip = (span + astep - 1) / astep;
                    let (var0, var_step) = if step > 0 { (lo, step) } else { (hi - 1, step) };
                    let (k0, k_end, k_stride) = match (lc.dist, self.nprocs) {
                        (None, _) | (_, 1) => (0i64, trip, 1i64),
                        (Some(Dist::Block), n) => {
                            let n = n as i64;
                            let chunk = (trip + n - 1) / n;
                            let start = (self.proc_id as i64) * chunk;
                            (
                                start.min(trip),
                                ((start + chunk).min(trip)).max(start.min(trip)),
                                1,
                            )
                        }
                        (Some(Dist::Cyclic), n) => (self.proc_id as i64, trip, n as i64),
                    };
                    if k0 >= k_end {
                        // Still emit the (not-taken) loop-entry branch.
                        let cmp = self.fresh();
                        self.emit(OpKind::Int, SrcList::new(), Some(cmp));
                        let mut b = SrcList::new();
                        b.push(cmp);
                        self.emit(OpKind::Branch, b, None);
                        self.pc = lc.exit;
                        continue;
                    }
                    self.frames.push(LoopFrame {
                        loop_id: *loop_id,
                        k: k0,
                        k_end,
                        k_stride,
                        var0,
                        var_step,
                        bound_vreg,
                    });
                    self.pc += 1;
                }
                Insn::LoopHead { loop_id, var, exit } => {
                    let fr = self.frames.last_mut().expect("loop head without frame");
                    debug_assert_eq!(fr.loop_id, *loop_id, "frame/insn loop mismatch");
                    if fr.k >= fr.k_end {
                        self.frames.pop();
                        self.pc = *exit;
                        continue;
                    }
                    let value = fr.var0 + fr.k * fr.var_step;
                    fr.k += fr.k_stride;
                    let bound_vreg = fr.bound_vreg;
                    let var = *var as usize;
                    let prev = self.var_vregs[var];
                    let counter = self.fresh();
                    let mut srcs = SrcList::new();
                    if prev != 0 {
                        srcs.push(prev);
                    }
                    let mut bsrcs = SrcList::new();
                    bsrcs.push(counter);
                    if bound_vreg != 0 {
                        bsrcs.push(bound_vreg);
                    }
                    self.var_vals[var] = value;
                    self.var_vregs[var] = counter;
                    self.pc += 1;
                    self.emit(OpKind::Int, srcs, Some(counter));
                    self.emit(OpKind::Branch, bsrcs, None);
                }
                Insn::Jump { target } => self.pc = *target,
                Insn::CondBr { cond_id, if_false } => {
                    // One pass evaluates the affine guard and collects its
                    // variable dependences (terms order = push order).
                    let cc = &code.conds[*cond_id as usize];
                    let mut v = cc.lhs.konst;
                    let mut srcs = SrcList::new();
                    for &(vi, c) in cc.lhs.terms.iter() {
                        v += c * self.var_vals[vi as usize];
                        let r = self.var_vregs[vi as usize];
                        if r != 0 {
                            srcs.push(r);
                        }
                    }
                    let taken = match cc.op {
                        CmpOp::Lt => v < 0,
                        CmpOp::Le => v <= 0,
                        CmpOp::Gt => v > 0,
                        CmpOp::Ge => v >= 0,
                        CmpOp::Eq => v == 0,
                        CmpOp::Ne => v != 0,
                    };
                    let cmp = self.fresh();
                    self.pc = if taken { self.pc + 1 } else { *if_false };
                    self.emit(OpKind::Int, srcs, Some(cmp));
                    let mut b = SrcList::new();
                    b.push(cmp);
                    self.emit(OpKind::Branch, b, None);
                }
                Insn::Barrier => {
                    let id = self.barriers_seen;
                    self.barriers_seen += 1;
                    self.pc += 1;
                    self.emit(OpKind::Barrier { id }, SrcList::new(), None);
                    break;
                }
                Insn::FlagSet { aff_id } => {
                    let flag = code.affs[*aff_id as usize].eval(&self.var_vals) as u32;
                    self.pc += 1;
                    self.emit(OpKind::FlagSet { flag }, SrcList::new(), None);
                    break;
                }
                Insn::FlagWait { aff_id } => {
                    let flag = code.affs[*aff_id as usize].eval(&self.var_vals) as u32;
                    self.pc += 1;
                    self.emit(OpKind::FlagWait { flag }, SrcList::new(), None);
                    break;
                }
                Insn::Halt => {
                    self.halted = true;
                    self.emit(OpKind::Halt, SrcList::new(), None);
                    break;
                }
            }
        }
    }

    fn resolve_bound(&self, b: &BoundCode) -> (i64, u32) {
        match b {
            BoundCode::Const(c) => (*c, 0),
            BoundCode::Affine(a) => (a.eval(&self.var_vals), 0),
            BoundCode::Scalar { scalar, elem_f } => (
                to_i64(self.scalar_vals[*scalar as usize], *elem_f),
                self.scalar_vregs[*scalar as usize],
            ),
        }
    }

    /// Computes the address of a compiled reference, emitting loads for
    /// indirect index components; returns the address and its dependence
    /// sources. With `clamped`, every dimension (and inner reference) is
    /// clamped into the array extent — non-faulting prefetch resolution.
    fn resolve_ref(&mut self, ref_id: u32, mem: &mut SimMem, clamped: bool) -> (u64, SrcList) {
        let code = self.code;
        let rc = &code.refs[ref_id as usize];
        // Fast path (release only): purely affine references use the
        // pre-folded base-plus-terms form. Debug builds take the general
        // path below so the interpreter's per-dimension bounds asserts
        // are preserved; both paths produce identical addresses/sources.
        #[cfg(not(debug_assertions))]
        if !clamped {
            if let Some(f) = &rc.folded {
                let mut flat = f.konst;
                for &(vi, c) in f.terms.iter() {
                    flat += c * self.var_vals[vi as usize];
                }
                let mut srcs = SrcList::new();
                for &vi in f.srcs.iter() {
                    let r = self.var_vregs[vi as usize];
                    if r != 0 {
                        srcs.push(r);
                    }
                }
                assert!(
                    flat >= 0 && (flat as u64) < rc.len,
                    "flattened index {flat} out of bounds for array {} (len {})",
                    rc.name,
                    rc.len
                );
                return (mem.elem_addr(rc.array, flat as u64), srcs);
            }
        }
        let mut srcs = SrcList::new();
        let mut flat: i64 = 0;
        for (_d, dim) in rc.dims.iter().enumerate() {
            let mut v = dim.affine.eval(&self.var_vals);
            for &(vi, _) in dim.affine.terms.iter() {
                let r = self.var_vregs[vi as usize];
                if r != 0 {
                    srcs.push(r);
                }
            }
            match &dim.dynamic {
                None => {}
                Some(DynCode::Scalar {
                    scalar,
                    elem_f,
                    scale,
                }) => {
                    let sv = to_i64(self.scalar_vals[*scalar as usize], *elem_f);
                    v += sv * scale;
                    let r = self.scalar_vregs[*scalar as usize];
                    if r != 0 {
                        srcs.push(r);
                    }
                }
                Some(DynCode::Indirect {
                    ref_id: inner,
                    elem_f,
                    scale,
                }) => {
                    let (iaddr, isrcs) = self.resolve_ref(*inner, mem, clamped);
                    let bits = mem.load_bits(iaddr);
                    let dst = self.fresh();
                    self.emit(OpKind::Load { addr: iaddr }, isrcs, Some(dst));
                    v += to_i64(bits, *elem_f) * scale;
                    srcs.push(dst);
                }
            }
            if clamped {
                v = v.clamp(0, dim.extent - 1);
            } else {
                debug_assert!(
                    v >= 0 && v < dim.extent,
                    "index {v} out of bounds in dim {_d} of array {} (extent {})",
                    rc.name,
                    dim.extent
                );
            }
            flat = flat * dim.extent + v;
        }
        if !clamped {
            assert!(
                flat >= 0 && (flat as u64) < rc.len,
                "flattened index {flat} out of bounds for array {} (len {})",
                rc.name,
                rc.len
            );
        }
        (mem.elem_addr(rc.array, flat as u64), srcs)
    }
}

/// An engine-selected functional executor for one simulated processor:
/// either a tree-walking [`Interp`] or a bytecode [`Vm`], behind one
/// `next_op` interface. The simulator keeps one per core.
#[derive(Debug)]
pub enum Executor<'p> {
    /// Tree-walking interpreter.
    Interp(Interp<'p>),
    /// Bytecode VM (borrows a shared compiled program).
    Vm(Vm<'p>),
}

impl<'p> Executor<'p> {
    /// Produces the next dynamic op, or `None` at end of program.
    #[inline]
    pub fn next_op(&mut self, mem: &mut SimMem) -> Option<DynOp> {
        match self {
            Executor::Interp(i) => i.next_op(mem),
            Executor::Vm(v) => v.next_op(mem),
        }
    }

    /// The processor this executor runs as.
    pub fn proc_id(&self) -> usize {
        match self {
            Executor::Interp(i) => i.proc_id(),
            Executor::Vm(v) => v.proc_id(),
        }
    }

    /// Runs to completion without a timing model.
    pub fn run_functional(&mut self, mem: &mut SimMem) -> RunSummary {
        match self {
            Executor::Interp(i) => i.run_functional(mem),
            Executor::Vm(v) => v.run_functional(mem),
        }
    }
}

/// Engine-selectable [`run_single`](crate::run_single): runs `prog` to
/// completion on a single processor.
pub fn run_single_with(prog: &Program, mem: &mut SimMem, engine: Engine) -> RunSummary {
    match engine {
        Engine::Interp => run_single(prog, mem),
        Engine::Bytecode => {
            let code = BytecodeProgram::compile(prog);
            Vm::new(&code, 0, 1).run_functional(mem)
        }
    }
}

/// Engine-selectable
/// [`run_parallel_functional`](crate::run_parallel_functional): runs
/// `prog` functionally with `nprocs` processors under `engine`,
/// interleaving ops round-robin while honoring barriers and flags.
///
/// # Panics
/// Panics when synchronization deadlocks (a flag waited on but never
/// set).
pub fn run_parallel_functional_with(
    prog: &Program,
    mem: &mut SimMem,
    nprocs: usize,
    engine: Engine,
) -> RunSummary {
    match engine {
        Engine::Interp => {
            let mut execs: Vec<Executor> = (0..nprocs)
                .map(|p| Executor::Interp(Interp::new(prog, p, nprocs)))
                .collect();
            run_parallel_executors(&mut execs, mem)
        }
        Engine::Bytecode => {
            let code = BytecodeProgram::compile(prog);
            let mut execs: Vec<Executor> = (0..nprocs)
                .map(|p| Executor::Vm(Vm::new(&code, p, nprocs)))
                .collect();
            run_parallel_executors(&mut execs, mem)
        }
    }
}

/// The shared round-robin scheduler behind the parallel functional
/// runners. Barrier arrival counts live in a flat `Vec` indexed by
/// barrier id (ids are numbered 0, 1, 2, … per processor, so the vector
/// is dense and grows to the deepest barrier reached).
pub(crate) fn run_parallel_executors(execs: &mut [Executor], mem: &mut SimMem) -> RunSummary {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Ready,
        AtBarrier(u32),
        AtFlag(u32),
        Done,
    }
    let nprocs = execs.len();
    let mut states = vec![State::Ready; nprocs];
    let mut flags: Vec<u32> = Vec::new();
    let mut barrier_counts: Vec<usize> = Vec::new();
    let at_barrier = |counts: &[usize], id: u32| counts.get(id as usize).copied().unwrap_or(0);
    let mut total = RunSummary::default();
    loop {
        // Release processors whose sync condition is met.
        for state in states.iter_mut() {
            match *state {
                State::AtBarrier(id) if at_barrier(&barrier_counts, id) == nprocs => {
                    *state = State::Ready;
                }
                State::AtFlag(f) if flags.contains(&f) => *state = State::Ready,
                _ => {}
            }
        }
        if states.iter().all(|&s| s == State::Done) {
            return total;
        }
        let mut progressed = false;
        for (p, exec) in execs.iter_mut().enumerate() {
            if states[p] != State::Ready {
                continue;
            }
            for _ in 0..64 {
                match exec.next_op(mem) {
                    Some(op) => {
                        progressed = true;
                        total.count(&op);
                        match op.kind {
                            OpKind::Barrier { id } => {
                                let i = id as usize;
                                if i >= barrier_counts.len() {
                                    barrier_counts.resize(i + 1, 0);
                                }
                                barrier_counts[i] += 1;
                                states[p] = State::AtBarrier(id);
                            }
                            OpKind::FlagSet { flag } if !flags.contains(&flag) => {
                                flags.push(flag);
                            }
                            OpKind::FlagWait { flag } if !flags.contains(&flag) => {
                                states[p] = State::AtFlag(flag);
                            }
                            _ => {}
                        }
                    }
                    None => {
                        // Reaching end-of-trace is progress too.
                        progressed = true;
                        states[p] = State::Done;
                    }
                }
                if states[p] != State::Ready {
                    break;
                }
            }
        }
        // Re-check sync releases; if nothing moved and nothing can be
        // released, the program deadlocked.
        if !progressed {
            let releasable = states.iter().any(|s| match *s {
                State::AtBarrier(id) => at_barrier(&barrier_counts, id) == nprocs,
                State::AtFlag(f) => flags.contains(&f),
                _ => false,
            });
            assert!(
                releasable,
                "functional parallel run deadlocked (unset flag or partial barrier)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::{AffineExpr, Cond};
    use crate::mem::ArrayData;
    use crate::program::{ArrayRef, Index};

    /// Asserts both engines produce op-for-op identical streams (kinds,
    /// addresses, srcs, dsts) and identical final memory for processor
    /// `proc` of `nprocs`, with `setup` initializing each memory image.
    fn assert_same_stream(
        p: &Program,
        proc: usize,
        nprocs: usize,
        setup: impl Fn(&Program, &mut SimMem),
    ) {
        let mut mi = SimMem::new(p, nprocs);
        let mut mv = SimMem::new(p, nprocs);
        setup(p, &mut mi);
        setup(p, &mut mv);
        let code = BytecodeProgram::compile(p);
        let mut interp = Interp::new(p, proc, nprocs);
        let mut vm = Vm::new(&code, proc, nprocs);
        let mut n = 0usize;
        loop {
            let oi = interp.next_op(&mut mi);
            let ov = vm.next_op(&mut mv);
            assert_eq!(oi, ov, "stream diverges at op {n} (program {})", p.name);
            n += 1;
            if oi.is_none() {
                break;
            }
        }
        assert_eq!(
            mi.fingerprint(),
            mv.fingerprint(),
            "memory diverges (program {})",
            p.name
        );
    }

    fn no_setup(_: &Program, _: &mut SimMem) {}

    #[test]
    fn sum_reduction_matches() {
        let mut b = ProgramBuilder::new("sum");
        let a = b.array_f64("a", &[4, 8]);
        let s = b.scalar_f64("sum", 0.0);
        let j = b.var("j");
        let i = b.var("i");
        b.for_const(j, 0, 4, |b| {
            b.for_const(i, 0, 8, |b| {
                let v = b.load(a, &[b.idx(j), b.idx(i)]);
                let acc = b.scalar(s);
                let add = b.add(acc, v);
                b.assign_scalar(s, add);
            });
        });
        let p = b.finish();
        assert_same_stream(&p, 0, 1, |_, m| {
            m.set_array(a, ArrayData::f64_fill(32, 2.0));
        });
    }

    #[test]
    fn indirect_gather_matches() {
        let mut b = ProgramBuilder::new("gather");
        let ind = b.array_i64("ind", &[4]);
        let data = b.array_f64("data", &[10]);
        let c = b.array_f64("c", &[4]);
        let i = b.var("i");
        b.for_const(i, 0, 4, |b| {
            let inner = ArrayRef::new(ind, vec![Index::affine(AffineExpr::var(i))]);
            let v = b.load_ref(ArrayRef::new(data, vec![Index::indirect(inner)]));
            b.assign_array(c, &[Index::affine(AffineExpr::var(i))], v);
        });
        let p = b.finish();
        assert_same_stream(&p, 0, 1, |_, m| {
            m.set_array(ind, ArrayData::I64(vec![9, 0, 3, 3]));
            m.set_array(
                data,
                ArrayData::F64((0..10).map(|x| x as f64 * 10.0).collect()),
            );
        });
    }

    #[test]
    fn pointer_chase_matches_and_chains() {
        let mut b = ProgramBuilder::new("chase");
        let next = b.array_i64("next", &[8]);
        let p_s = b.scalar_i64("p", 0);
        let i = b.var("i");
        b.for_const(i, 0, 4, |b| {
            let v = b.load_ref(ArrayRef::new(next, vec![Index::scalar(p_s)]));
            b.assign_scalar(p_s, v);
        });
        let p = b.finish();
        assert_same_stream(&p, 0, 1, |_, m| {
            m.set_array(next, ArrayData::I64(vec![3, 0, 1, 5, 2, 7, 4, 6]));
        });
        // And the VM alone must serialize the chase through the scalar vreg.
        let mut mem = SimMem::new(&p, 1);
        mem.set_array(next, ArrayData::I64(vec![3, 0, 1, 5, 2, 7, 4, 6]));
        let code = BytecodeProgram::compile(&p);
        let mut vm = Vm::new(&code, 0, 1);
        let mut last_load_dst: Option<u32> = None;
        let mut loads = 0;
        while let Some(op) = vm.next_op(&mut mem) {
            if let OpKind::Load { .. } = op.kind {
                if let Some(prev) = last_load_dst {
                    assert!(
                        op.srcs.as_slice().contains(&prev),
                        "chase load must depend on previous load"
                    );
                }
                last_load_dst = op.dst;
                loads += 1;
            }
        }
        assert_eq!(loads, 4);
    }

    #[test]
    fn guards_and_else_branches_match() {
        let mut b = ProgramBuilder::new("guard");
        let c = b.array_f64("c", &[8]);
        let s = b.scalar_f64("s", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 8, |b| {
            let cond = Cond::lt(AffineExpr::var(i), AffineExpr::konst(3));
            b.if_then_else(
                cond,
                |b| {
                    let one = b.constf(1.0);
                    b.assign_array(c, &[Index::affine(AffineExpr::var(i))], one);
                },
                |b| {
                    let acc = b.scalar(s);
                    let two = b.constf(2.0);
                    let nv = b.add(acc, two);
                    b.assign_scalar(s, nv);
                },
            );
        });
        let p = b.finish();
        assert_same_stream(&p, 0, 1, no_setup);
    }

    #[test]
    fn distributions_match_every_proc() {
        for dist in [Dist::Block, Dist::Cyclic] {
            let mut b = ProgramBuilder::new("dist");
            let c = b.array_f64("c", &[13]);
            let i = b.var("i");
            b.for_dist(i, 0, 13, dist, |b| {
                let one = b.constf(1.0);
                b.assign_array(c, &[Index::affine(AffineExpr::var(i))], one);
            });
            let p = b.finish();
            for proc in 0..4 {
                assert_same_stream(&p, proc, 4, no_setup);
            }
        }
    }

    #[test]
    fn negative_step_and_affine_bounds_match() {
        // Triangular loop i in 0..j, then a backwards (negative-step) loop.
        let mut b = ProgramBuilder::new("tri");
        let c2 = b.array_f64("c", &[8, 8]);
        let j2 = b.var("j");
        let i2 = b.var("i");
        b.for_const(j2, 0, 8, |b| {
            b.for_affine(i2, 0i64, AffineExpr::var(j2), |b| {
                let one = b.constf(1.0);
                b.assign_array(
                    c2,
                    &[
                        Index::affine(AffineExpr::var(j2)),
                        Index::affine(AffineExpr::var(i2)),
                    ],
                    one,
                );
            });
        });
        let k = b.var("k");
        b.for_step(k, 0, 8, -2, |b| {
            let two = b.constf(2.0);
            b.assign_array(
                c2,
                &[
                    Index::affine(AffineExpr::konst(0)),
                    Index::affine(AffineExpr::var(k)),
                ],
                two,
            );
        });
        let p = b.finish();
        assert_same_stream(&p, 0, 1, no_setup);
    }

    #[test]
    fn scalar_bound_empty_loop_and_sync_match() {
        let mut b = ProgramBuilder::new("mix");
        let c = b.array_f64("c", &[8]);
        let n = b.scalar_i64("n", 5);
        let z = b.scalar_i64("z", 0);
        let i = b.var("i");
        let j = b.var("j");
        b.flags(2);
        b.barrier();
        b.for_scalar(i, 0, n, |b| {
            let one = b.constf(1.0);
            b.assign_array(c, &[Index::affine(AffineExpr::var(i))], one);
        });
        // Empty loop: scalar bound 0 still emits the entry branch.
        b.for_scalar(j, 0, z, |b| {
            let two = b.constf(2.0);
            b.assign_array(c, &[Index::affine(AffineExpr::var(j))], two);
        });
        b.flag_set(AffineExpr::konst(1));
        b.flag_wait(AffineExpr::konst(1));
        b.barrier();
        let p = b.finish();
        assert_same_stream(&p, 0, 1, no_setup);
    }

    #[test]
    fn arithmetic_kinds_and_folding_match() {
        let mut b = ProgramBuilder::new("arith");
        let c = b.array_f64("c", &[16]);
        let d = b.array_i64("d", &[16]);
        let i = b.var("i");
        b.for_const(i, 0, 16, |b| {
            // Constant-folded chain: (2.0 * 3.0) + 1.0.
            let t = b.mul(b.constf(2.0), b.constf(3.0));
            let f = b.add(t, b.constf(1.0));
            // Mixed int/float with div, sqrt, neg, min/max and loop var.
            let iv = b.loop_var(i);
            let q = b.div(f, b.constf(4.0));
            let sq = b.sqrt(q);
            let neg = b.neg(sq);
            let mx = b.max(neg, iv.clone());
            b.assign_array(c, &[Index::affine(AffineExpr::var(i))], mx);
            // Integer side: wrapping mul, div-by-zero => 0, abs.
            let im = b.mul(iv.clone(), b.consti(3));
            let idiv = b.div(im, b.consti(0));
            let ab = Expr::un(UnOp::Abs, b.sub(idiv, b.consti(7)));
            b.assign_array(d, &[Index::affine(AffineExpr::var(i))], ab);
        });
        let p = b.finish();
        assert_same_stream(&p, 0, 1, no_setup);
    }

    #[test]
    fn prefetch_clamping_matches() {
        let mut b = ProgramBuilder::new("pf");
        let a = b.array_f64("a", &[16]);
        let s = b.scalar_f64("acc", 0.0);
        let i = b.var("i");
        b.for_const(i, 0, 16, |b| {
            // Prefetch runs 4 ahead — clamps at the end of the array.
            b.prefetch(a, &[Index::affine(AffineExpr::var(i).offset(4))]);
            let v = b.load(a, &[b.idx(i)]);
            let acc = b.scalar(s);
            let nv = b.add(acc, v);
            b.assign_scalar(s, nv);
        });
        let p = b.finish();
        assert_same_stream(&p, 0, 1, |_, m| {
            m.set_array(a, ArrayData::F64((0..16).map(|x| x as f64).collect()));
        });
    }

    #[test]
    fn parallel_functional_matches_across_engines() {
        let mut b = ProgramBuilder::new("par");
        let c = b.array_f64("c", &[64]);
        let i = b.var("i");
        b.for_dist(i, 0, 64, Dist::Block, |b| {
            let one = b.constf(1.0);
            b.assign_array(c, &[Index::affine(AffineExpr::var(i))], one);
        });
        b.barrier();
        let s = b.scalar_f64("acc", 0.0);
        let j = b.var("j");
        b.for_dist(j, 0, 64, Dist::Cyclic, |b| {
            let v = b.load(c, &[b.idx(j)]);
            let acc = b.scalar(s);
            let nv = b.add(acc, v);
            b.assign_scalar(s, nv);
        });
        let p = b.finish();
        let mut m1 = SimMem::new(&p, 4);
        let s1 = run_parallel_functional_with(&p, &mut m1, 4, Engine::Interp);
        let mut m2 = SimMem::new(&p, 4);
        let s2 = run_parallel_functional_with(&p, &mut m2, 4, Engine::Bytecode);
        assert_eq!(s1, s2);
        assert_eq!(m1.fingerprint(), m2.fingerprint());
    }

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("interp".parse::<Engine>().unwrap(), Engine::Interp);
        assert_eq!("bytecode".parse::<Engine>().unwrap(), Engine::Bytecode);
        assert_eq!("vm".parse::<Engine>().unwrap(), Engine::Bytecode);
        assert!("jit".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Bytecode);
        assert_eq!(Engine::Bytecode.to_string(), "bytecode");
    }

    use crate::expr::{Expr, UnOp};
}
