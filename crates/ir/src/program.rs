//! Program structure: declarations, loops and statements.

use crate::expr::{AffineExpr, Cond, Expr};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Constructs an id from a raw index.
            pub fn from_raw(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw index (usable to index the owning table).
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_type!(
    /// Identifies an array declared in a [`Program`].
    ArrayId
);
id_type!(
    /// Identifies a scalar (register-allocated) variable.
    ScalarId
);
id_type!(
    /// Identifies a loop variable.
    VarId
);

/// Element type of arrays and scalars. All elements are 8 bytes, matching
/// the double-word accesses the paper reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ElemType {
    /// IEEE-754 double.
    #[default]
    F64,
    /// 64-bit signed integer (indices, pointers).
    I64,
}

/// Size in bytes of every array element and scalar.
pub const ELEM_BYTES: u64 = 8;

/// An array declaration: a row-major rectangular array of 8-byte elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name (for diagnostics and pretty-printing).
    pub name: String,
    /// Extent of each dimension, outermost first (row-major layout).
    pub dims: Vec<usize>,
    /// Element type.
    pub elem: ElemType,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.len() as u64 * ELEM_BYTES
    }

    /// Row-major linearization strides, in elements, per dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.dims.len()];
        for d in (0..self.dims.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.dims[d + 1];
        }
        s
    }
}

/// A scalar declaration. Scalars model register-allocated temporaries
/// (accumulators, chased pointers); reading or writing one does not touch
/// the memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarDecl {
    /// Human-readable name.
    pub name: String,
    /// Element type.
    pub elem: ElemType,
    /// Initial value as a raw bit pattern (f64 bits or i64 bits).
    pub init_bits: u64,
}

/// The dynamic (non-affine) component of an array index.
#[derive(Debug, Clone, PartialEq)]
pub enum DynIndex {
    /// `scale * scalar` — e.g. pointer chasing `next[p]`.
    Scalar {
        /// The scalar whose current value enters the index.
        scalar: ScalarId,
        /// Multiplier applied to the scalar value.
        scale: i64,
    },
    /// `scale * load(ref)` — e.g. indirect indexing `b[ind[i]]`.
    Indirect {
        /// The reference whose loaded value enters the index.
        inner: Box<ArrayRef>,
        /// Multiplier applied to the loaded value.
        scale: i64,
    },
}

/// One dimension of an array index: `affine + dynamic`.
#[derive(Debug, Clone, PartialEq)]
pub struct Index {
    /// Affine part over loop variables.
    pub affine: AffineExpr,
    /// Optional dynamic part (indirect or scalar-carried).
    pub dynamic: Option<DynIndex>,
}

impl Index {
    /// A purely affine index.
    pub fn affine(e: impl Into<AffineExpr>) -> Self {
        Index {
            affine: e.into(),
            dynamic: None,
        }
    }

    /// An index that is `scalar` (plus optional affine offset).
    pub fn scalar(s: ScalarId) -> Self {
        Index {
            affine: AffineExpr::konst(0),
            dynamic: Some(DynIndex::Scalar {
                scalar: s,
                scale: 1,
            }),
        }
    }

    /// An index loaded from another array reference.
    pub fn indirect(r: ArrayRef) -> Self {
        Index {
            affine: AffineExpr::konst(0),
            dynamic: Some(DynIndex::Indirect {
                inner: Box::new(r),
                scale: 1,
            }),
        }
    }

    /// True when the index has no dynamic component.
    pub fn is_affine(&self) -> bool {
        self.dynamic.is_none()
    }
}

/// A static array reference: `array[idx_0, idx_1, ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayId,
    /// One index per declared dimension.
    pub indices: Vec<Index>,
}

impl ArrayRef {
    /// A reference with purely affine indices.
    pub fn new(array: ArrayId, indices: Vec<Index>) -> Self {
        ArrayRef { array, indices }
    }

    /// True when every index dimension is affine.
    pub fn is_affine(&self) -> bool {
        self.indices.iter().all(Index::is_affine)
    }

    /// Visits array references nested inside this one's dynamic indices
    /// (innermost first), not including `self`.
    pub fn visit_inner_refs<'a>(&'a self, f: &mut impl FnMut(&'a ArrayRef)) {
        for ix in &self.indices {
            if let Some(DynIndex::Indirect { inner, .. }) = &ix.dynamic {
                inner.visit_inner_refs(f);
                f(inner);
            }
        }
    }
}

/// How a parallel loop's iterations are distributed over processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// Contiguous blocks of iterations per processor (SPLASH-2 style).
    Block,
    /// Round-robin single iterations.
    Cyclic,
}

/// A loop bound. `lo` is inclusive, `hi` is exclusive for positive steps;
/// for negative steps iteration runs from `hi - 1` down to `lo`
/// (i.e. the same half-open range, walked backwards).
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// A compile-time constant.
    Const(i64),
    /// Affine in enclosing loop variables (triangular loops).
    Affine(AffineExpr),
    /// The current value of a scalar (variable-length inner loops:
    /// hash-chain lengths in MST, node degrees in Em3d, jammed minima).
    Scalar(ScalarId),
}

impl Bound {
    /// Constant value, if this is a [`Bound::Const`] (or constant affine).
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Bound::Const(c) => Some(*c),
            Bound::Affine(e) => e.as_const(),
            Bound::Scalar(_) => None,
        }
    }
}

impl From<i64> for Bound {
    fn from(c: i64) -> Self {
        Bound::Const(c)
    }
}

impl From<AffineExpr> for Bound {
    fn from(e: AffineExpr) -> Self {
        match e.as_const() {
            Some(c) => Bound::Const(c),
            None => Bound::Affine(e),
        }
    }
}

/// A (possibly parallel) counted loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// The loop variable (unique per loop in a well-formed program).
    pub var: VarId,
    /// Lower bound (inclusive).
    pub lo: Bound,
    /// Upper bound (exclusive).
    pub hi: Bound,
    /// Step; negative steps iterate the range backwards.
    pub step: i64,
    /// `Some` when the loop's iterations are distributed over processors.
    pub dist: Option<Dist>,
    /// Loop body.
    pub body: Vec<Stmt>,
}

impl Loop {
    /// Trip count when both bounds are compile-time constants.
    pub fn const_trip_count(&self) -> Option<i64> {
        let lo = self.lo.as_const()?;
        let hi = self.hi.as_const()?;
        let span = (hi - lo).max(0);
        let step = self.step.abs().max(1);
        Some((span + step - 1) / step)
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = rhs` where `lhs` is an array element (a store).
    AssignArray {
        /// Destination element.
        lhs: ArrayRef,
        /// Value stored.
        rhs: Expr,
    },
    /// `lhs = rhs` where `lhs` is a scalar (stays in a register).
    AssignScalar {
        /// Destination scalar.
        lhs: ScalarId,
        /// Value computed.
        rhs: Expr,
    },
    /// A nested loop.
    Loop(Loop),
    /// A guard: `if cond { then_branch } else { else_branch }`.
    If {
        /// The (affine) condition.
        cond: Cond,
        /// Taken when the condition holds.
        then_branch: Vec<Stmt>,
        /// Taken otherwise.
        else_branch: Vec<Stmt>,
    },
    /// Global barrier across all processors.
    Barrier,
    /// Release-semantics flag set: completes after the processor's earlier
    /// stores are globally performed. The flag index is affine in loop vars.
    FlagSet {
        /// Flag index.
        idx: AffineExpr,
    },
    /// Acquire-semantics flag wait: retires only once the flag is set.
    FlagWait {
        /// Flag index.
        idx: AffineExpr,
    },
    /// Software prefetch of an array element's line (non-binding; the
    /// interpreter clamps out-of-bounds prefetch addresses into the
    /// array, mirroring the guard-free prefetching real compilers emit).
    Prefetch {
        /// The prefetched reference.
        target: ArrayRef,
    },
}

impl Stmt {
    /// Visits every array reference in the statement (reads then writes),
    /// not descending into nested loops or guards.
    pub fn visit_local_refs<'a>(&'a self, f: &mut impl FnMut(&'a ArrayRef, bool)) {
        match self {
            Stmt::AssignArray { lhs, rhs } => {
                rhs.visit_refs(&mut |r| f(r, false));
                lhs.visit_inner_refs(&mut |r| f(r, false));
                f(lhs, true);
            }
            Stmt::AssignScalar { rhs, .. } => {
                rhs.visit_refs(&mut |r| f(r, false));
            }
            _ => {}
        }
    }
}

/// A whole program: declarations plus a top-level statement list.
///
/// A `Program` is executed SPMD-style by `nprocs` processors: every
/// processor runs the whole body, loops with [`Loop::dist`]`= Some(..)`
/// split their iterations, and [`Stmt::Barrier`]/flags synchronize.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Program name (diagnostics).
    pub name: String,
    /// Array declarations, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Scalar declarations, indexed by [`ScalarId`].
    pub scalars: Vec<ScalarDecl>,
    /// Loop-variable names, indexed by [`VarId`].
    pub var_names: Vec<String>,
    /// Number of synchronization flags used.
    pub num_flags: usize,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Declaration of `a`.
    ///
    /// # Panics
    /// Panics if `a` was not declared in this program.
    pub fn array(&self, a: ArrayId) -> &ArrayDecl {
        &self.arrays[a.index()]
    }

    /// Declaration of scalar `s`.
    pub fn scalar(&self, s: ScalarId) -> &ScalarDecl {
        &self.scalars[s.index()]
    }

    /// Name of loop variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// Allocates a fresh loop variable (used by transformations).
    pub fn fresh_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId::from_raw(self.var_names.len() as u32);
        self.var_names.push(name.into());
        id
    }

    /// Allocates a fresh scalar (used by transformations, e.g. scalar
    /// replacement and variable-trip-count jamming).
    pub fn fresh_scalar(&mut self, name: impl Into<String>, elem: ElemType) -> ScalarId {
        let id = ScalarId::from_raw(self.scalars.len() as u32);
        self.scalars.push(ScalarDecl {
            name: name.into(),
            elem,
            init_bits: 0,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_strides_row_major() {
        let a = ArrayDecl {
            name: "a".into(),
            dims: vec![4, 5, 6],
            elem: ElemType::F64,
        };
        assert_eq!(a.strides(), vec![30, 6, 1]);
        assert_eq!(a.len(), 120);
        assert_eq!(a.byte_len(), 960);
    }

    #[test]
    fn trip_count() {
        let l = Loop {
            var: VarId::from_raw(0),
            lo: Bound::Const(0),
            hi: Bound::Const(10),
            step: 3,
            dist: None,
            body: vec![],
        };
        assert_eq!(l.const_trip_count(), Some(4));
        let back = Loop {
            step: -1,
            ..l.clone()
        };
        assert_eq!(back.const_trip_count(), Some(10));
        let empty = Loop {
            lo: Bound::Const(5),
            hi: Bound::Const(5),
            ..l
        };
        assert_eq!(empty.const_trip_count(), Some(0));
    }

    #[test]
    fn bound_from_affine_folds_constants() {
        let b: Bound = AffineExpr::konst(7).into();
        assert_eq!(b, Bound::Const(7));
    }

    #[test]
    fn fresh_ids() {
        let mut p = Program::default();
        let v0 = p.fresh_var("i");
        let v1 = p.fresh_var("j");
        assert_ne!(v0, v1);
        assert_eq!(p.var_name(v1), "j");
        let s = p.fresh_scalar("t", ElemType::F64);
        assert_eq!(p.scalar(s).name, "t");
    }
}
