//! Bytecode lowering: compiles a [`Program`]'s loop nests into a flat,
//! branch-target-resolved register-machine bytecode.
//!
//! The tree-walking interpreter ([`Interp`](crate::Interp)) re-walks the
//! statement tree and re-resolves every name on every dynamic instruction:
//! each array access chases `ArrayRef -> ArrayDecl -> dims/strides`, each
//! affine index iterates a `Vec<(VarId, i64)>` through a lookup closure,
//! and each expression node is dispatched recursively. The compiler in
//! this module does all of that name resolution **once**, ahead of time:
//!
//! * expression trees are flattened into linear [`Insn`] sequences over
//!   numbered temporary slots (a register machine, no recursion);
//! * array references become [`RefCode`]s with extents and — for purely
//!   affine references — a pre-folded `base + sum(coeff * var)` form with
//!   the row-major strides already multiplied through ([`FoldedRef`]);
//! * loop bounds, guard conditions and flag indices become [`AffineCode`]s
//!   indexing a dense loop-variable slot array;
//! * constant subexpressions are folded at compile time (the op is still
//!   *emitted* at run time so the dynamic op stream is unchanged — only
//!   the value computation is hoisted);
//! * control flow (loops, guards) is resolved to absolute instruction
//!   targets, so the VM in [`vm`](crate::vm) is a flat `pc`-driven loop.
//!
//! The compiled program is engine-equivalent by construction: the VM
//! yields exactly the op stream the interpreter yields — same kinds, same
//! addresses, same source/destination vregs, in the same order — which is
//! enforced by the differential gates in `crates/difftest`.

use crate::expr::{AffineExpr, BinOp, CmpOp, Expr, UnOp};
use crate::program::{ArrayId, ArrayRef, Bound, Dist, DynIndex, ElemType, Loop, Program, Stmt};
use crate::trace::{FpUnit, OpKind};

/// Statically-resolved op kind of an arithmetic instruction (the dynamic
/// op emitted per execution; resolvable at compile time because operand
/// types are static — scalars are coerced to their declared element type
/// on every assignment and loads are typed by the array declaration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EmitKind {
    FpArith,
    FpDiv,
    FpSqrt,
    Int,
    IntMul,
}

impl EmitKind {
    pub(crate) fn op_kind(self) -> OpKind {
        match self {
            EmitKind::FpArith => OpKind::Fp {
                unit: FpUnit::Arith,
            },
            EmitKind::FpDiv => OpKind::Fp { unit: FpUnit::Div },
            EmitKind::FpSqrt => OpKind::Fp { unit: FpUnit::Sqrt },
            EmitKind::Int => OpKind::Int,
            EmitKind::IntMul => OpKind::IntMul,
        }
    }
}

/// Where an instruction operand's value (and producing vreg) lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Opnd {
    /// Constant bits; vreg 0 (no producing op).
    Imm(u64),
    /// Loop-variable slot.
    Var(u32),
    /// Scalar slot.
    Scalar(u32),
    /// Expression-temporary slot.
    Temp(u32),
}

/// An operand together with its static value type (`true` = f64 bits).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TOp {
    pub opnd: Opnd,
    pub is_f: bool,
}

/// One bytecode instruction.
#[derive(Debug, Clone)]
pub(crate) enum Insn {
    /// Binary arithmetic into temp `dst`, emitting one ALU/FPU op.
    Bin {
        op: BinOp,
        kind: EmitKind,
        a: TOp,
        b: TOp,
        dst: u32,
    },
    /// Unary arithmetic into temp `dst`.
    Un {
        op: UnOp,
        kind: EmitKind,
        a: TOp,
        dst: u32,
    },
    /// Constant-folded arithmetic: the value is precomputed, but the op is
    /// still emitted (fresh dst, no sources) to keep the stream identical.
    Folded { kind: EmitKind, bits: u64, dst: u32 },
    /// Array load into temp `dst` (emits the `Load` op).
    Load { ref_id: u32, dst: u32 },
    /// Array store of `src` (emits the `Store` op; coerces to the array's
    /// element type when `to_f` differs from the operand type).
    Store { ref_id: u32, src: TOp, to_f: bool },
    /// Scalar assignment (register-allocated: emits nothing).
    SetScalar { scalar: u32, src: TOp, to_f: bool },
    /// Software prefetch (clamped address resolution, emits `Prefetch`).
    Prefetch { ref_id: u32 },
    /// Loop entry: resolve bounds, distribute iterations; on an empty
    /// range emit the not-taken entry branch and jump to `exit`.
    LoopEnter { loop_id: u32 },
    /// Per-iteration head: emit the counter update + loop branch and fall
    /// through into the body, or pop the frame and jump to `exit`.
    /// Carries the loop's variable slot and exit target inline so the hot
    /// per-iteration path never touches the `loops` side table.
    LoopHead { loop_id: u32, var: u32, exit: u32 },
    /// Unconditional branch.
    Jump { target: u32 },
    /// Guard: emit the compare + branch ops, fall through when taken.
    CondBr { cond_id: u32, if_false: u32 },
    /// Global barrier (ids numbered per processor in execution order).
    Barrier,
    /// Flag set (release) with an affine flag index.
    FlagSet { aff_id: u32 },
    /// Flag wait (acquire) with an affine flag index.
    FlagWait { aff_id: u32 },
    /// End of program: emit `Halt` and stop.
    Halt,
}

/// A compiled affine expression over loop-variable slots.
#[derive(Debug, Clone)]
pub(crate) struct AffineCode {
    pub konst: i64,
    /// `(loop-var slot, coefficient)` in the normal-form (sorted) order.
    pub terms: Box<[(u32, i64)]>,
}

impl AffineCode {
    fn from_expr(e: &AffineExpr) -> Self {
        AffineCode {
            konst: e.constant_term(),
            terms: e.terms().map(|(v, c)| (v.index() as u32, c)).collect(),
        }
    }

    /// Evaluates against the dense loop-variable value array.
    pub(crate) fn eval(&self, vars: &[i64]) -> i64 {
        let mut v = self.konst;
        for &(vi, c) in self.terms.iter() {
            v += c * vars[vi as usize];
        }
        v
    }
}

/// The dynamic (non-affine) part of one index dimension.
#[derive(Debug, Clone)]
pub(crate) enum DynCode {
    /// `scale * scalar` (pointer chasing).
    Scalar {
        scalar: u32,
        elem_f: bool,
        scale: i64,
    },
    /// `scale * load(refs[ref_id])` (indirect indexing).
    Indirect {
        ref_id: u32,
        elem_f: bool,
        scale: i64,
    },
}

/// One dimension of a compiled array reference.
#[derive(Debug, Clone)]
pub(crate) struct DimCode {
    pub extent: i64,
    pub affine: AffineCode,
    pub dynamic: Option<DynCode>,
}

/// Pre-folded flat-index form of a purely affine reference: the row-major
/// strides are multiplied through the per-dimension affine parts, giving
/// `flat = konst + sum(coeff * var)` in one pass.
///
/// Only the release-mode VM fast path reads these fields — debug builds
/// take the general per-dimension path to preserve the interpreter's
/// per-dimension bounds asserts.
#[derive(Debug, Clone)]
#[cfg_attr(debug_assertions, allow(dead_code))]
pub(crate) struct FoldedRef {
    pub konst: i64,
    /// `(loop-var slot, stride * coefficient)` merged across dimensions.
    pub terms: Box<[(u32, i64)]>,
    /// Loop-var slots in the interpreter's per-dimension source push
    /// order (first occurrence kept — `SrcList::push` dedups anyway).
    pub srcs: Box<[u32]>,
}

/// A compiled array reference.
#[derive(Debug, Clone)]
pub(crate) struct RefCode {
    pub array: ArrayId,
    /// Total element count (release-mode flat bounds assert).
    pub len: u64,
    /// Element type of the referenced array (`true` = f64).
    pub elem_f: bool,
    /// Fast path for purely affine references (read in release builds
    /// only — see [`FoldedRef`]).
    #[cfg_attr(debug_assertions, allow(dead_code))]
    pub folded: Option<FoldedRef>,
    /// General per-dimension resolution (dynamic indices, clamped
    /// prefetch resolution, and debug-mode per-dimension bounds checks).
    pub dims: Box<[DimCode]>,
    /// Array name for panic messages.
    pub name: Box<str>,
}

/// A compiled loop bound.
#[derive(Debug, Clone)]
pub(crate) enum BoundCode {
    Const(i64),
    Affine(AffineCode),
    Scalar { scalar: u32, elem_f: bool },
}

/// A compiled loop: bounds, step, distribution and the exit target (the
/// variable slot lives inline in [`Insn::LoopHead`]).
#[derive(Debug, Clone)]
pub(crate) struct LoopCode {
    pub lo: BoundCode,
    pub hi: BoundCode,
    pub step: i64,
    pub dist: Option<Dist>,
    /// First instruction after the loop.
    pub exit: u32,
}

/// A compiled guard condition `affine OP 0`.
#[derive(Debug, Clone)]
pub(crate) struct CondCode {
    pub lhs: AffineCode,
    pub op: CmpOp,
}

/// A [`Program`] lowered to flat register-machine bytecode.
///
/// Produced by [`BytecodeProgram::compile`]; executed by one
/// [`Vm`](crate::Vm) per simulated processor. The compiled form is
/// position-independent state: any number of VMs (one per processor)
/// can share one `BytecodeProgram`.
#[derive(Debug, Clone)]
pub struct BytecodeProgram {
    pub(crate) insns: Vec<Insn>,
    pub(crate) refs: Vec<RefCode>,
    pub(crate) loops: Vec<LoopCode>,
    pub(crate) conds: Vec<CondCode>,
    pub(crate) affs: Vec<AffineCode>,
    /// Initial scalar bit patterns (indexed by scalar slot).
    pub(crate) scalar_inits: Vec<u64>,
    pub(crate) n_vars: usize,
    /// Expression-temporary slots needed (watermark over all statements).
    pub(crate) n_temps: usize,
}

impl BytecodeProgram {
    /// Lowers `prog` into bytecode. The program should be validated
    /// (`prog.validate()`); the compiler asserts the same structural
    /// invariants the interpreter asserts (nonzero steps, rank match).
    pub fn compile(prog: &Program) -> BytecodeProgram {
        let mut c = Compiler {
            prog,
            insns: Vec::new(),
            refs: Vec::new(),
            loops: Vec::new(),
            conds: Vec::new(),
            affs: Vec::new(),
            n_temps: 0,
        };
        c.compile_block(&prog.body);
        c.insns.push(Insn::Halt);
        BytecodeProgram {
            insns: c.insns,
            refs: c.refs,
            loops: c.loops,
            conds: c.conds,
            affs: c.affs,
            scalar_inits: prog.scalars.iter().map(|s| s.init_bits).collect(),
            n_vars: prog.var_names.len(),
            n_temps: c.n_temps as usize,
        }
    }

    /// Number of bytecode instructions (diagnostics, benches).
    pub fn insn_count(&self) -> usize {
        self.insns.len()
    }

    /// Number of expression-temporary slots a VM needs.
    pub fn temp_slots(&self) -> usize {
        self.n_temps
    }
}

/// Binary-op value semantics, shared verbatim between compile-time
/// folding and the VM: must match `Interp::eval` bit-for-bit.
pub(crate) fn bin_value(op: BinOp, a_f: bool, ab: u64, b_f: bool, bb: u64) -> u64 {
    if a_f || b_f {
        let (x, y) = (to_f64(ab, a_f), to_f64(bb, b_f));
        let v = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        };
        v.to_bits()
    } else {
        let (x, y) = (ab as i64, bb as i64);
        let v = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    0
                } else {
                    x / y
                }
            }
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        };
        v as u64
    }
}

/// Unary-op value semantics (see [`bin_value`]).
pub(crate) fn un_value(op: UnOp, a_f: bool, ab: u64) -> u64 {
    match (op, a_f) {
        (UnOp::Neg, true) => (-f64::from_bits(ab)).to_bits(),
        (UnOp::Neg, false) => (-(ab as i64)) as u64,
        (UnOp::Abs, true) => f64::from_bits(ab).abs().to_bits(),
        (UnOp::Abs, false) => (ab as i64).unsigned_abs(),
        (UnOp::Sqrt, _) => to_f64(ab, a_f).sqrt().to_bits(),
    }
}

pub(crate) fn to_f64(bits: u64, is_f: bool) -> f64 {
    if is_f {
        f64::from_bits(bits)
    } else {
        (bits as i64) as f64
    }
}

pub(crate) fn to_i64(bits: u64, is_f: bool) -> i64 {
    if is_f {
        f64::from_bits(bits) as i64
    } else {
        bits as i64
    }
}

/// Coerces `bits` of type `is_f` to the target type `to_f` — the
/// assignment coercion the interpreter applies to every scalar and array
/// store (values always land in the declared element type).
pub(crate) fn coerce(bits: u64, is_f: bool, to_f: bool) -> u64 {
    match (is_f, to_f) {
        (true, true) | (false, false) => bits,
        (false, true) => ((bits as i64) as f64).to_bits(),
        (true, false) => (f64::from_bits(bits) as i64) as u64,
    }
}

struct Compiler<'p> {
    prog: &'p Program,
    insns: Vec<Insn>,
    refs: Vec<RefCode>,
    loops: Vec<LoopCode>,
    conds: Vec<CondCode>,
    affs: Vec<AffineCode>,
    n_temps: u32,
}

impl<'p> Compiler<'p> {
    fn here(&self) -> u32 {
        self.insns.len() as u32
    }

    fn claim_temps(&mut self, n: u32) {
        self.n_temps = self.n_temps.max(n);
    }

    fn is_f_scalar(&self, s: crate::program::ScalarId) -> bool {
        matches!(self.prog.scalar(s).elem, ElemType::F64)
    }

    fn compile_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.compile_stmt(s);
        }
    }

    fn compile_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::AssignArray { lhs, rhs } => {
                let src = self.compile_expr(rhs, 0);
                let ref_id = self.compile_ref(lhs);
                let to_f = matches!(self.prog.array(lhs.array).elem, ElemType::F64);
                self.insns.push(Insn::Store { ref_id, src, to_f });
            }
            Stmt::AssignScalar { lhs, rhs } => {
                let src = self.compile_expr(rhs, 0);
                let to_f = self.is_f_scalar(*lhs);
                self.insns.push(Insn::SetScalar {
                    scalar: lhs.index() as u32,
                    src,
                    to_f,
                });
            }
            Stmt::Loop(lp) => self.compile_loop(lp),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond_id = self.conds.len() as u32;
                self.conds.push(CondCode {
                    lhs: AffineCode::from_expr(&cond.lhs),
                    op: cond.op,
                });
                let br_at = self.here() as usize;
                self.insns.push(Insn::CondBr {
                    cond_id,
                    if_false: 0,
                });
                self.compile_block(then_branch);
                if else_branch.is_empty() {
                    let end = self.here();
                    let Insn::CondBr { if_false, .. } = &mut self.insns[br_at] else {
                        unreachable!()
                    };
                    *if_false = end;
                } else {
                    let jump_at = self.here() as usize;
                    self.insns.push(Insn::Jump { target: 0 });
                    let else_start = self.here();
                    let Insn::CondBr { if_false, .. } = &mut self.insns[br_at] else {
                        unreachable!()
                    };
                    *if_false = else_start;
                    self.compile_block(else_branch);
                    let end = self.here();
                    let Insn::Jump { target } = &mut self.insns[jump_at] else {
                        unreachable!()
                    };
                    *target = end;
                }
            }
            Stmt::Barrier => self.insns.push(Insn::Barrier),
            Stmt::FlagSet { idx } => {
                let aff_id = self.push_aff(idx);
                self.insns.push(Insn::FlagSet { aff_id });
            }
            Stmt::FlagWait { idx } => {
                let aff_id = self.push_aff(idx);
                self.insns.push(Insn::FlagWait { aff_id });
            }
            Stmt::Prefetch { target } => {
                let ref_id = self.compile_ref(target);
                self.insns.push(Insn::Prefetch { ref_id });
            }
        }
    }

    fn push_aff(&mut self, e: &AffineExpr) -> u32 {
        let id = self.affs.len() as u32;
        self.affs.push(AffineCode::from_expr(e));
        id
    }

    fn compile_loop(&mut self, lp: &Loop) {
        assert!(lp.step != 0, "loop step must be nonzero");
        let loop_id = self.loops.len() as u32;
        self.loops.push(LoopCode {
            lo: self.compile_bound(&lp.lo),
            hi: self.compile_bound(&lp.hi),
            step: lp.step,
            dist: lp.dist,
            exit: 0,
        });
        self.insns.push(Insn::LoopEnter { loop_id });
        let head = self.here();
        self.insns.push(Insn::LoopHead {
            loop_id,
            var: lp.var.index() as u32,
            exit: 0,
        });
        self.compile_block(&lp.body);
        self.insns.push(Insn::Jump { target: head });
        let exit_pc = self.here();
        self.loops[loop_id as usize].exit = exit_pc;
        let Insn::LoopHead { exit, .. } = &mut self.insns[head as usize] else {
            unreachable!()
        };
        *exit = exit_pc;
    }

    fn compile_bound(&self, b: &Bound) -> BoundCode {
        match b {
            Bound::Const(c) => BoundCode::Const(*c),
            Bound::Affine(e) => BoundCode::Affine(AffineCode::from_expr(e)),
            Bound::Scalar(s) => BoundCode::Scalar {
                scalar: s.index() as u32,
                elem_f: self.is_f_scalar(*s),
            },
        }
    }

    /// Flattens an expression tree into instructions whose temporaries
    /// live in slots `base..`; returns the operand holding the result.
    /// Leaves (constants, vars, scalars) use no slot; every op-emitting
    /// node deposits its result in slot `base` exactly when evaluation
    /// reaches it, so the left subtree's result (parked in `base`) only
    /// needs one extra slot while the right subtree runs.
    fn compile_expr(&mut self, e: &Expr, base: u32) -> TOp {
        match e {
            Expr::ConstF(x) => TOp {
                opnd: Opnd::Imm(x.to_bits()),
                is_f: true,
            },
            Expr::ConstI(x) => TOp {
                opnd: Opnd::Imm(*x as u64),
                is_f: false,
            },
            Expr::LoopVar(v) => TOp {
                opnd: Opnd::Var(v.index() as u32),
                is_f: false,
            },
            Expr::Scalar(s) => TOp {
                opnd: Opnd::Scalar(s.index() as u32),
                is_f: self.is_f_scalar(*s),
            },
            Expr::Load(r) => {
                let ref_id = self.compile_ref(r);
                self.claim_temps(base + 1);
                let elem_f = self.refs[ref_id as usize].elem_f;
                self.insns.push(Insn::Load { ref_id, dst: base });
                TOp {
                    opnd: Opnd::Temp(base),
                    is_f: elem_f,
                }
            }
            Expr::Unary(op, a) => {
                let a_t = self.compile_expr(a, base);
                let is_f = match op {
                    UnOp::Sqrt => true,
                    UnOp::Neg | UnOp::Abs => a_t.is_f,
                };
                let kind = match (op, a_t.is_f) {
                    (UnOp::Sqrt, _) => EmitKind::FpSqrt,
                    (_, true) => EmitKind::FpArith,
                    (_, false) => EmitKind::Int,
                };
                self.claim_temps(base + 1);
                if let Opnd::Imm(bits) = a_t.opnd {
                    let bits = un_value(*op, a_t.is_f, bits);
                    self.insns.push(Insn::Folded {
                        kind,
                        bits,
                        dst: base,
                    });
                } else {
                    self.insns.push(Insn::Un {
                        op: *op,
                        kind,
                        a: a_t,
                        dst: base,
                    });
                }
                TOp {
                    opnd: Opnd::Temp(base),
                    is_f,
                }
            }
            Expr::Binary(op, a, b) => {
                let a_t = self.compile_expr(a, base);
                let b_base = base + matches!(a_t.opnd, Opnd::Temp(_)) as u32;
                let b_t = self.compile_expr(b, b_base);
                let float = a_t.is_f || b_t.is_f;
                let kind = match (float, op) {
                    (true, BinOp::Div) => EmitKind::FpDiv,
                    (true, _) => EmitKind::FpArith,
                    (false, BinOp::Mul) | (false, BinOp::Div) => EmitKind::IntMul,
                    (false, _) => EmitKind::Int,
                };
                self.claim_temps(base + 1);
                if let (Opnd::Imm(ab), Opnd::Imm(bb)) = (a_t.opnd, b_t.opnd) {
                    let bits = bin_value(*op, a_t.is_f, ab, b_t.is_f, bb);
                    self.insns.push(Insn::Folded {
                        kind,
                        bits,
                        dst: base,
                    });
                } else {
                    self.insns.push(Insn::Bin {
                        op: *op,
                        kind,
                        a: a_t,
                        b: b_t,
                        dst: base,
                    });
                }
                TOp {
                    opnd: Opnd::Temp(base),
                    is_f: float,
                }
            }
        }
    }

    /// Compiles an array reference (inner indirect references first, so
    /// their ids exist before the outer reference's `DynCode` names them).
    fn compile_ref(&mut self, r: &ArrayRef) -> u32 {
        let prog = self.prog;
        let decl = prog.array(r.array);
        debug_assert_eq!(
            decl.dims.len(),
            r.indices.len(),
            "rank mismatch on array {}",
            decl.name
        );
        let mut dims = Vec::with_capacity(r.indices.len());
        for (d, ix) in r.indices.iter().enumerate() {
            let dynamic = match &ix.dynamic {
                None => None,
                Some(DynIndex::Scalar { scalar, scale }) => Some(DynCode::Scalar {
                    scalar: scalar.index() as u32,
                    elem_f: matches!(prog.scalar(*scalar).elem, ElemType::F64),
                    scale: *scale,
                }),
                Some(DynIndex::Indirect { inner, scale }) => Some(DynCode::Indirect {
                    ref_id: self.compile_ref(inner),
                    elem_f: matches!(prog.array(inner.array).elem, ElemType::F64),
                    scale: *scale,
                }),
            };
            dims.push(DimCode {
                extent: decl.dims[d] as i64,
                affine: AffineCode::from_expr(&ix.affine),
                dynamic,
            });
        }
        let folded = if r.is_affine() {
            let strides = decl.strides();
            let mut konst = 0i64;
            let mut terms: Vec<(u32, i64)> = Vec::new();
            let mut srcs: Vec<u32> = Vec::new();
            for (d, ix) in r.indices.iter().enumerate() {
                let s = strides[d] as i64;
                konst += s * ix.affine.constant_term();
                for (v, c) in ix.affine.terms() {
                    let vi = v.index() as u32;
                    match terms.iter_mut().find(|t| t.0 == vi) {
                        Some(t) => t.1 += s * c,
                        None => terms.push((vi, s * c)),
                    }
                    if !srcs.contains(&vi) {
                        srcs.push(vi);
                    }
                }
            }
            Some(FoldedRef {
                konst,
                terms: terms.into(),
                srcs: srcs.into(),
            })
        } else {
            None
        };
        let id = self.refs.len() as u32;
        self.refs.push(RefCode {
            array: r.array,
            len: decl.len() as u64,
            elem_f: matches!(decl.elem, ElemType::F64),
            folded,
            dims: dims.into(),
            name: decl.name.clone().into_boxed_str(),
        });
        id
    }
}
