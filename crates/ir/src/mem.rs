//! The simulated flat address space in which a program's arrays live.

use crate::program::{ArrayId, ElemType, Program, ELEM_BYTES};

/// Page size used for NUMA home-node assignment.
pub const PAGE_BYTES: u64 = 4096;

/// Alignment of array base addresses (covers any cache-line size we model).
const ARRAY_ALIGN: u64 = 256;

/// Initial contents for one array.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    /// All elements zero.
    Zero,
    /// Explicit doubles.
    F64(Vec<f64>),
    /// Explicit integers.
    I64(Vec<i64>),
}

impl ArrayData {
    /// `n` copies of `v`.
    pub fn f64_fill(n: usize, v: f64) -> Self {
        ArrayData::F64(vec![v; n])
    }

    /// Number of elements provided (`None` for [`ArrayData::Zero`], which
    /// adapts to the declared size).
    pub fn len(&self) -> Option<usize> {
        match self {
            ArrayData::Zero => None,
            ArrayData::F64(v) => Some(v.len()),
            ArrayData::I64(v) => Some(v.len()),
        }
    }

    /// True when explicitly empty.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }
}

/// How simulated pages are assigned home nodes in a multiprocessor run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HomePolicy {
    /// Each array is split into `nprocs` contiguous chunks; chunk `p` is
    /// homed at node `p`. Mirrors the block data placement the SPLASH-2
    /// codes use so that block-distributed loops touch mostly local data.
    #[default]
    BlockPerArray,
    /// Pages round-robin across nodes.
    PageInterleave,
    /// Everything homed at node 0 (an SMP with one memory, or the Exemplar
    /// hypernode where placement is not distinguished).
    Centralized,
}

#[derive(Debug, Clone)]
struct Region {
    base: u64,
    bytes: u64,
}

/// The simulated memory: array layout plus functional contents.
///
/// Addresses handed to the timing simulator come from this layout, so
/// cache indexing, bank interleaving and NUMA homing all see realistic
/// address streams.
#[derive(Debug, Clone)]
pub struct SimMem {
    regions: Vec<Region>,
    /// Raw 8-byte cells, indexed by address / 8.
    data: Vec<u64>,
    elem_types: Vec<ElemType>,
    nprocs: usize,
    policy: HomePolicy,
    total_bytes: u64,
}

impl SimMem {
    /// Lays out every array of `prog` and zero-initializes contents.
    pub fn new(prog: &Program, nprocs: usize) -> Self {
        Self::with_policy(prog, nprocs, HomePolicy::default())
    }

    /// Lays out with an explicit NUMA policy.
    pub fn with_policy(prog: &Program, nprocs: usize, policy: HomePolicy) -> Self {
        assert!(nprocs >= 1, "need at least one processor");
        let mut regions = Vec::with_capacity(prog.arrays.len());
        // Leave page 0 unused so that address 0 can act as a null pointer.
        let mut cursor = PAGE_BYTES;
        for a in &prog.arrays {
            let base = round_up(cursor, ARRAY_ALIGN);
            let bytes = a.byte_len();
            regions.push(Region { base, bytes });
            cursor = base + bytes;
        }
        let total_bytes = round_up(cursor, ELEM_BYTES);
        SimMem {
            regions,
            data: vec![0u64; (total_bytes / ELEM_BYTES) as usize],
            elem_types: prog.arrays.iter().map(|a| a.elem).collect(),
            nprocs,
            policy,
            total_bytes,
        }
    }

    /// Number of processors this layout was built for.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Total simulated bytes laid out.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Base address of array `a`.
    pub fn base(&self, a: ArrayId) -> u64 {
        self.regions[a.index()].base
    }

    /// Sets the contents of array `a`.
    ///
    /// # Panics
    /// Panics when the provided data's length does not match the declared
    /// array size, or its type does not match the declaration.
    pub fn set_array(&mut self, a: ArrayId, data: ArrayData) {
        let region = self.regions[a.index()].clone();
        let n = (region.bytes / ELEM_BYTES) as usize;
        let start = (region.base / ELEM_BYTES) as usize;
        match data {
            ArrayData::Zero => {
                self.data[start..start + n].fill(0);
            }
            ArrayData::F64(v) => {
                assert_eq!(v.len(), n, "f64 data length mismatch for array");
                assert_eq!(
                    self.elem_types[a.index()],
                    ElemType::F64,
                    "array declared integer but given f64 data"
                );
                for (i, x) in v.into_iter().enumerate() {
                    self.data[start + i] = x.to_bits();
                }
            }
            ArrayData::I64(v) => {
                assert_eq!(v.len(), n, "i64 data length mismatch for array");
                for (i, x) in v.into_iter().enumerate() {
                    self.data[start + i] = x as u64;
                }
            }
        }
    }

    /// Reads the raw 8-byte cell at `addr`.
    ///
    /// # Panics
    /// Panics on unaligned or out-of-range addresses.
    pub fn load_bits(&self, addr: u64) -> u64 {
        debug_assert_eq!(addr % ELEM_BYTES, 0, "unaligned load at {addr:#x}");
        self.data[(addr / ELEM_BYTES) as usize]
    }

    /// Writes the raw 8-byte cell at `addr`.
    pub fn store_bits(&mut self, addr: u64, bits: u64) {
        debug_assert_eq!(addr % ELEM_BYTES, 0, "unaligned store at {addr:#x}");
        self.data[(addr / ELEM_BYTES) as usize] = bits;
    }

    /// Element address of `a[flat_index]`.
    pub fn elem_addr(&self, a: ArrayId, flat_index: u64) -> u64 {
        let r = &self.regions[a.index()];
        let addr = r.base + flat_index * ELEM_BYTES;
        debug_assert!(
            addr < r.base + r.bytes,
            "index {flat_index} out of bounds for array at {:#x}",
            r.base
        );
        addr
    }

    /// Reads array `a` back as doubles (for result verification).
    pub fn read_f64(&self, a: ArrayId) -> Vec<f64> {
        let r = &self.regions[a.index()];
        let start = (r.base / ELEM_BYTES) as usize;
        let n = (r.bytes / ELEM_BYTES) as usize;
        self.data[start..start + n]
            .iter()
            .map(|&b| f64::from_bits(b))
            .collect()
    }

    /// Reads array `a` back as integers.
    pub fn read_i64(&self, a: ArrayId) -> Vec<i64> {
        let r = &self.regions[a.index()];
        let start = (r.base / ELEM_BYTES) as usize;
        let n = (r.bytes / ELEM_BYTES) as usize;
        self.data[start..start + n]
            .iter()
            .map(|&b| b as i64)
            .collect()
    }

    /// A fingerprint of the whole memory image — used by the semantic
    /// equivalence tests (transformed programs must produce the same image).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the raw cells.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &cell in &self.data {
            for byte in cell.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }

    /// The array containing `addr`, if any (used by the miss-rate
    /// profiler to attribute cache misses to arrays).
    pub fn array_of_addr(&self, addr: u64) -> Option<crate::program::ArrayId> {
        let idx = match self.regions.binary_search_by(|r| r.base.cmp(&addr)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let r = &self.regions[idx];
        if addr < r.base + r.bytes {
            Some(crate::program::ArrayId::from_raw(idx as u32))
        } else {
            None
        }
    }

    /// Extracts a cheap, standalone copy of the NUMA home mapping
    /// (policy + region table, no data) for use by the timing simulator.
    pub fn home_map(&self) -> HomeMap {
        HomeMap {
            regions: self.regions.iter().map(|r| (r.base, r.bytes)).collect(),
            nprocs: self.nprocs,
            policy: self.policy,
        }
    }

    /// The NUMA home node of `addr` under this layout's policy.
    pub fn home_node(&self, addr: u64) -> usize {
        if self.nprocs == 1 {
            return 0;
        }
        match self.policy {
            HomePolicy::Centralized => 0,
            HomePolicy::PageInterleave => ((addr / PAGE_BYTES) as usize) % self.nprocs,
            HomePolicy::BlockPerArray => {
                // Find the containing region; binary search over sorted bases.
                let idx = match self.regions.binary_search_by(|r| r.base.cmp(&addr)) {
                    Ok(i) => i,
                    Err(0) => return 0,
                    Err(i) => i - 1,
                };
                let r = &self.regions[idx];
                if addr >= r.base + r.bytes {
                    return 0;
                }
                let chunk = (r.bytes / self.nprocs as u64).max(PAGE_BYTES);
                (((addr - r.base) / chunk) as usize).min(self.nprocs - 1)
            }
        }
    }
}

fn round_up(x: u64, align: u64) -> u64 {
    x.div_ceil(align) * align
}

/// A standalone copy of a [`SimMem`]'s NUMA home mapping.
#[derive(Debug, Clone)]
pub struct HomeMap {
    regions: Vec<(u64, u64)>,
    nprocs: usize,
    policy: HomePolicy,
}

impl HomeMap {
    /// The NUMA home node of `addr` (same result as
    /// [`SimMem::home_node`] on the originating layout).
    pub fn home_node(&self, addr: u64) -> usize {
        if self.nprocs == 1 {
            return 0;
        }
        match self.policy {
            HomePolicy::Centralized => 0,
            HomePolicy::PageInterleave => ((addr / PAGE_BYTES) as usize) % self.nprocs,
            HomePolicy::BlockPerArray => {
                let idx = match self.regions.binary_search_by(|&(b, _)| b.cmp(&addr)) {
                    Ok(i) => i,
                    Err(0) => return 0,
                    Err(i) => i - 1,
                };
                let (base, bytes) = self.regions[idx];
                if addr >= base + bytes {
                    return 0;
                }
                let chunk = (bytes / self.nprocs as u64).max(PAGE_BYTES);
                (((addr - base) / chunk) as usize).min(self.nprocs - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayDecl, Program};

    fn prog_with_arrays(dims: &[&[usize]]) -> Program {
        Program {
            name: "t".into(),
            arrays: dims
                .iter()
                .enumerate()
                .map(|(i, d)| ArrayDecl {
                    name: format!("a{i}"),
                    dims: d.to_vec(),
                    elem: ElemType::F64,
                })
                .collect(),
            ..Program::default()
        }
    }

    #[test]
    fn layout_is_aligned_and_disjoint() {
        let p = prog_with_arrays(&[&[10], &[3, 7], &[100]]);
        let m = SimMem::new(&p, 1);
        let mut prev_end = 0;
        for i in 0..3 {
            let a = ArrayId::from_raw(i);
            let base = m.base(a);
            assert_eq!(base % ARRAY_ALIGN, 0);
            assert!(base >= prev_end);
            prev_end = base + p.array(a).byte_len();
        }
        assert!(m.total_bytes() >= prev_end);
    }

    #[test]
    fn store_load_roundtrip() {
        let p = prog_with_arrays(&[&[4]]);
        let mut m = SimMem::new(&p, 1);
        let a = ArrayId::from_raw(0);
        m.set_array(a, ArrayData::F64(vec![1.0, 2.0, 3.0, 4.0]));
        let addr = m.elem_addr(a, 2);
        assert_eq!(f64::from_bits(m.load_bits(addr)), 3.0);
        m.store_bits(addr, 9.5f64.to_bits());
        assert_eq!(m.read_f64(a), vec![1.0, 2.0, 9.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_array_length_checked() {
        let p = prog_with_arrays(&[&[4]]);
        let mut m = SimMem::new(&p, 1);
        m.set_array(ArrayId::from_raw(0), ArrayData::F64(vec![1.0]));
    }

    #[test]
    fn fingerprint_sensitive_to_contents() {
        let p = prog_with_arrays(&[&[8]]);
        let mut m1 = SimMem::new(&p, 1);
        let m2 = m1.clone();
        assert_eq!(m1.fingerprint(), m2.fingerprint());
        m1.store_bits(m1.elem_addr(ArrayId::from_raw(0), 0), 1);
        assert_ne!(m1.fingerprint(), m2.fingerprint());
    }

    #[test]
    fn home_block_per_array_splits_evenly() {
        let p = prog_with_arrays(&[&[1 << 16]]); // 512 KB
        let m = SimMem::with_policy(&p, 4, HomePolicy::BlockPerArray);
        let a = ArrayId::from_raw(0);
        let first = m.home_node(m.elem_addr(a, 0));
        let last = m.home_node(m.elem_addr(a, (1 << 16) - 1));
        assert_eq!(first, 0);
        assert_eq!(last, 3);
        // Monotone nondecreasing across the array.
        let mut prev = 0;
        for i in (0..(1 << 16)).step_by(997) {
            let h = m.home_node(m.elem_addr(a, i));
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn home_page_interleave_cycles() {
        let p = prog_with_arrays(&[&[1 << 14]]);
        let m = SimMem::with_policy(&p, 4, HomePolicy::PageInterleave);
        let a = ArrayId::from_raw(0);
        let base_page = m.base(a) / PAGE_BYTES;
        let h0 = m.home_node(m.base(a));
        assert_eq!(h0, (base_page as usize) % 4);
        let h1 = m.home_node(m.base(a) + PAGE_BYTES);
        assert_eq!(h1, (h0 + 1) % 4);
    }

    #[test]
    fn home_uniprocessor_is_zero() {
        let p = prog_with_arrays(&[&[64]]);
        let m = SimMem::with_policy(&p, 1, HomePolicy::PageInterleave);
        assert_eq!(m.home_node(m.base(ArrayId::from_raw(0))), 0);
    }
}
