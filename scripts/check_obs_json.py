#!/usr/bin/env python3
"""Validate an observability JSON export against one of the checked-in
schemas (schemas/obs-*.schema.json).

Usage:
    scripts/check_obs_json.py <schema.json> <document.json>

Stdlib-only: implements the small JSON Schema (draft-07) subset the
schemas actually use — type, required, properties, additionalProperties,
propertyNames.pattern, items, enum, const, minimum, minItems, allOf,
oneOf and if/then. Exits 0 when the document validates, 1 with a list of
violations otherwise.
"""

import json
import re
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def type_ok(value, name):
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, TYPES[name])


def validate(value, schema, path, errors):
    """Appends `path: problem` strings to errors; returns True when the
    value satisfies `schema` (used by the combinators, which probe
    sub-schemas without reporting their internal failures)."""
    local = []

    if "const" in schema and value != schema["const"]:
        local.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        local.append(f"{path}: {value!r} not in {schema['enum']!r}")

    if "type" in schema:
        names = schema["type"]
        names = names if isinstance(names, list) else [names]
        if not any(type_ok(value, n) for n in names):
            local.append(f"{path}: expected {'/'.join(names)}, got {type(value).__name__}")
            errors.extend(local)
            return not local

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            local.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                local.append(f"{path}: missing required key {req!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", local)
        if "propertyNames" in schema:
            pattern = schema["propertyNames"].get("pattern")
            for key in value:
                if pattern and not re.match(pattern, key):
                    local.append(f"{path}: key {key!r} does not match {pattern!r}")
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, sub in value.items():
                if key not in props:
                    validate(sub, extra, f"{path}.{key}", local)

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            local.append(f"{path}: {len(value)} items < minItems {schema['minItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], f"{path}[{i}]", local)

    for sub in schema.get("allOf", []):
        if "if" in sub:
            if validate(value, sub["if"], path, []):
                if "then" in sub:
                    validate(value, sub["then"], path, local)
        else:
            validate(value, sub, path, local)

    if "oneOf" in schema:
        matches = sum(validate(value, sub, path, []) for sub in schema["oneOf"])
        if matches != 1:
            local.append(f"{path}: matched {matches} of the oneOf branches, want exactly 1")

    errors.extend(local)
    return not local


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    schema_path, doc_path = sys.argv[1], sys.argv[2]
    with open(schema_path) as f:
        schema = json.load(f)
    with open(doc_path) as f:
        doc = json.load(f)
    errors = []
    validate(doc, schema, "$", errors)
    if errors:
        print(f"{doc_path}: {len(errors)} schema violation(s) against {schema_path}:")
        for e in errors[:50]:
            print(f"  {e}")
        sys.exit(1)
    print(f"{doc_path}: ok ({schema_path})")


if __name__ == "__main__":
    main()
