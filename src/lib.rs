//! Workspace umbrella crate: hosts the cross-crate integration tests in
//! `tests/` (semantic equivalence, paper-claim checks, property suites,
//! extension tests) and the runnable examples in `examples/`.
//!
//! The library surface simply re-exports the [`mempar`] facade; depend on
//! the individual `mempar-*` crates for real use.

pub use mempar;
